"""The Proposition 14 / Appendix D gadget: Diophantine equations in
GPC with arithmetic conditions.

Appendix D reduces Hilbert's 10th problem to matching a GPC pattern
with arithmetic conditions: a chain graph carries one self-loop per
polynomial variable, the pattern loops ``v_i`` times over loop ``i``
(so ``#(x_i) = v_i``), and per-monomial loops are forced — via
arithmetic conditions — to be traversed exactly ``|c_j| * m_j(v)``
times. A final condition equates the positive and negative monomial
sums, which holds iff ``f(v) = 0``.

One deviation from the paper's sketch: the paper writes
``#(y_j) = y_j.coeff * m_j(...)`` with signed coefficients, but
``#(y_j)`` is a count and cannot be negative. We therefore store
``|c_j|`` in the ``coeff`` property and assert
``sum_{c_j > 0} #(y_j) = sum_{c_j < 0} #(y_j) + u.k`` (with
``u.k = 0``), which is equivalent and keeps every count non-negative.

Undecidability is about *unbounded* loops; :func:`solve_bounded` caps
every loop at a search bound, giving a decidable (and complete up to
the bound) solver used by the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.graph.property_graph import PropertyGraph
from repro.gpc import ast
from repro.gpc.engine import EngineConfig, Evaluator
from repro.gpc.values import GroupValue
from repro.extensions.arithmetic import (
    ArithConditioned,
    Count,
    PropertyTerm,
    Term,
    TermConst,
    TermProduct,
    TermSum,
)

__all__ = [
    "DiophantineInstance",
    "build_gadget_graph",
    "build_gadget_pattern",
    "solve_bounded",
]


@dataclass(frozen=True)
class DiophantineInstance:
    """A polynomial ``f = sum_j c_j * prod_i x_i^(e_ji)`` over ``m``
    natural-number variables.

    ``monomials`` is a tuple of ``(coefficient, exponents)`` pairs with
    ``exponents`` a length-``m`` tuple of non-negative integers.
    """

    num_variables: int
    monomials: tuple[tuple[int, tuple[int, ...]], ...]

    def __post_init__(self) -> None:
        if self.num_variables < 1:
            raise WorkloadError("need at least one variable")
        if not self.monomials:
            raise WorkloadError("need at least one monomial")
        for coefficient, exponents in self.monomials:
            if len(exponents) != self.num_variables:
                raise WorkloadError(
                    f"exponent tuple {exponents} does not match "
                    f"{self.num_variables} variables"
                )
            if coefficient == 0:
                raise WorkloadError("zero coefficients are redundant")
            if any(e < 0 for e in exponents):
                raise WorkloadError("exponents must be non-negative")

    def evaluate(self, values: tuple[int, ...]) -> int:
        """``f(values)`` — used to verify solutions independently."""
        total = 0
        for coefficient, exponents in self.monomials:
            term = coefficient
            for value, exponent in zip(values, exponents):
                term *= value**exponent
            total += term
        return total


def build_gadget_graph(instance: DiophantineInstance) -> PropertyGraph:
    """The Appendix D graph: a chain of variable nodes (with ``A_i``
    self-loops) followed by monomial nodes (with ``B_j`` loops and
    ``coeff`` properties)."""
    graph = PropertyGraph()
    previous = None
    chain_edges = 0
    for i in range(instance.num_variables):
        labels = {"V"}
        properties = {}
        if i == 0:
            labels.add("S")
            properties["k"] = 0
        node = graph.add_node(f"n{i}", labels=labels, properties=properties or None)
        graph.add_edge(f"loop_x{i}", node, node, labels={f"A{i}"})
        if previous is not None:
            graph.add_edge(f"chain{chain_edges}", previous, node, labels={"A"})
            chain_edges += 1
        previous = node
    for j, (coefficient, _) in enumerate(instance.monomials):
        node = graph.add_node(
            f"m{j}", labels={"M"}, properties={"coeff": abs(coefficient)}
        )
        graph.add_edge(f"loop_y{j}", node, node, labels={f"B{j}"})
        graph.add_edge(f"chain{chain_edges}", previous, node, labels={"A"})
        chain_edges += 1
        previous = node
    return graph


def _monomial_term(exponents: tuple[int, ...]) -> Term:
    """``prod_i #(x_i)^(e_i)`` expanded into binary products (degrees
    are written out, as in the paper's remark that every bounded-degree
    monomial is a proper arithmetic term)."""
    factors: list[Term] = []
    for i, exponent in enumerate(exponents):
        factors.extend(Count(f"x{i}") for _ in range(exponent))
    if not factors:
        return TermConst(1)
    term = factors[0]
    for factor in factors[1:]:
        term = TermProduct(term, factor)
    return term


def _monomial_loop_bound(
    instance: DiophantineInstance, j: int, variable_bound: int
) -> int:
    """How many times the j-th monomial loop may need to turn when all
    variables are at most ``variable_bound``: ``|c_j| * bound^deg``."""
    coefficient, exponents = instance.monomials[j]
    return abs(coefficient) * max(1, variable_bound) ** sum(exponents)


def build_gadget_pattern(
    instance: DiophantineInstance, loop_bound: int | None = None
) -> ast.Pattern:
    """The Appendix D pattern. ``loop_bound`` of ``None`` gives the
    paper's unbounded loops; an integer bounds each *variable* loop at
    ``loop_bound`` turns (monomial loops are then bounded by
    ``|c_j| * loop_bound^deg``, the largest count they might need)."""
    parts: list[ast.Pattern] = [ast.node("u", "S")]
    for i in range(instance.num_variables):
        if i > 0:
            parts.append(ast.forward(label="A"))
            parts.append(ast.node())
        parts.append(
            ast.Repeat(ast.forward(f"x{i}", f"A{i}"), 0, loop_bound)
        )
    pattern: ast.Pattern = ast.concat(*parts)
    # Monomial sections: each wraps the pattern so far and adds the
    # per-monomial condition #(y_j) = coeff_j * m_j(#x...).
    for j, (_, exponents) in enumerate(instance.monomials):
        monomial_bound = (
            None
            if loop_bound is None
            else _monomial_loop_bound(instance, j, loop_bound)
        )
        section = ast.concat(
            ast.forward(label="A"),
            ast.node(f"w{j}"),
            ast.Repeat(ast.forward(f"y{j}", f"B{j}"), 0, monomial_bound),
        )
        pattern = ArithConditioned(
            ast.Concat(pattern, section),
            Count(f"y{j}"),
            TermProduct(PropertyTerm(f"w{j}", "coeff"), _monomial_term(exponents)),
        )
    # Final condition: positive monomial sum = negative sum + u.k.
    positive: Term = TermConst(0)
    negative: Term = PropertyTerm("u", "k")
    for j, (coefficient, _) in enumerate(instance.monomials):
        if coefficient > 0:
            positive = TermSum(positive, Count(f"y{j}"))
        else:
            negative = TermSum(negative, Count(f"y{j}"))
    return ArithConditioned(pattern, positive, negative)


def solve_bounded(
    instance: DiophantineInstance,
    bound: int,
    config: EngineConfig | None = None,
) -> tuple[int, ...] | None:
    """Search for a solution with all variable values ``<= bound``.

    Builds the gadget graph and the bounded pattern, evaluates it, and
    decodes a solution from the loop counts of any match. Returns
    ``None`` when no solution exists within the bound.
    """
    graph = build_gadget_graph(instance)
    pattern = build_gadget_pattern(instance, loop_bound=bound)
    evaluator = Evaluator(graph, config)
    chain_edges = instance.num_variables + len(instance.monomials) - 1
    loop_budget = bound * instance.num_variables + sum(
        _monomial_loop_bound(instance, j, bound)
        for j in range(len(instance.monomials))
    )
    matches = evaluator.eval_pattern(
        pattern, max_length=chain_edges + loop_budget
    )
    for _, mu in matches:
        values = []
        for i in range(instance.num_variables):
            binding = mu[f"x{i}"]
            if not isinstance(binding, GroupValue):
                raise WorkloadError(
                    f"gadget variable x{i} bound "
                    f"{type(binding).__name__}, expected a group value"
                )
            values.append(len(binding))
        solution = tuple(values)
        if instance.evaluate(solution) != 0:
            raise WorkloadError(
                f"gadget produced a non-solution {solution!r}"
            )
        return solution
    return None
