"""Label expressions (a Section 7 extension).

GQL offers complex label expressions in descriptors; the paper lists
them as a natural GPC extension. Here node and edge patterns may carry
a Boolean combination of labels:

- ``LabelAtom("A")`` — the element has label ``A``;
- ``LabelAnd`` / ``LabelOr`` / ``LabelNot`` — Boolean combinations;
- ``LabelWildcard()`` — any element (even label-less).

:class:`NodeWithLabelExpr` and :class:`EdgeWithLabelExpr` mirror the
core atomic patterns through the extension protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union as TUnion

from repro.direction import Direction
from repro.gpc import ast
from repro.gpc.assignments import EMPTY_ASSIGNMENT, Assignment
from repro.gpc.types import EDGE, NODE
from repro.graph.paths import Path
from repro.automata.nfa import EdgeStep

__all__ = [
    "LabelAtom",
    "LabelAnd",
    "LabelOr",
    "LabelNot",
    "LabelWildcard",
    "LabelExpr",
    "satisfies_label_expr",
    "label_expr_satisfiable",
    "NodeWithLabelExpr",
    "EdgeWithLabelExpr",
]


@dataclass(frozen=True)
class LabelAtom:
    label: str


@dataclass(frozen=True)
class LabelAnd:
    left: "LabelExpr"
    right: "LabelExpr"


@dataclass(frozen=True)
class LabelOr:
    left: "LabelExpr"
    right: "LabelExpr"


@dataclass(frozen=True)
class LabelNot:
    inner: "LabelExpr"


@dataclass(frozen=True)
class LabelWildcard:
    pass


LabelExpr = TUnion[LabelAtom, LabelAnd, LabelOr, LabelNot, LabelWildcard]


def label_expr_satisfiable(expression: LabelExpr, atom_cap: int = 12) -> bool:
    """Whether *some* label set satisfies the expression.

    Label expressions only mention finitely many atoms, so this is a
    small boolean SAT check: enumerate assignments over the distinct
    atoms (an element can carry any subset of labels — the atoms are
    independent). Expressions with more than ``atom_cap`` atoms are
    conservatively reported satisfiable; the static analyzer only acts
    on a provably-``False`` verdict, so the cap never costs soundness.
    """
    atoms = sorted(_label_atoms(expression))
    if len(atoms) > atom_cap:
        return True
    for bits in range(1 << len(atoms)):
        labels = frozenset(
            atom for index, atom in enumerate(atoms) if bits >> index & 1
        )
        if satisfies_label_expr(labels, expression):
            return True
    return False


def _label_atoms(expression: LabelExpr) -> set[str]:
    if isinstance(expression, LabelAtom):
        return {expression.label}
    if isinstance(expression, (LabelAnd, LabelOr)):
        return _label_atoms(expression.left) | _label_atoms(expression.right)
    if isinstance(expression, LabelNot):
        return _label_atoms(expression.inner)
    return set()


def satisfies_label_expr(labels: frozenset[str], expression: LabelExpr) -> bool:
    """Whether a label set satisfies the expression."""
    if isinstance(expression, LabelAtom):
        return expression.label in labels
    if isinstance(expression, LabelAnd):
        return satisfies_label_expr(labels, expression.left) and satisfies_label_expr(
            labels, expression.right
        )
    if isinstance(expression, LabelOr):
        return satisfies_label_expr(labels, expression.left) or satisfies_label_expr(
            labels, expression.right
        )
    if isinstance(expression, LabelNot):
        return not satisfies_label_expr(labels, expression.inner)
    if isinstance(expression, LabelWildcard):
        return True
    raise TypeError(f"not a label expression: {expression!r}")


@dataclass(frozen=True)
class NodeWithLabelExpr(ast.PatternExtension):
    """``(x : <label expression>)``."""

    expression: LabelExpr
    variable: Optional[str] = None

    def children(self) -> tuple[ast.Pattern, ...]:
        return ()

    def own_variables(self) -> frozenset[str]:
        return frozenset({self.variable} if self.variable else ())

    def infer_schema_ext(self, child_schemas: list[dict]) -> dict:
        return {self.variable: NODE} if self.variable else {}

    def min_path_length_ext(self, child_mins: list[int]) -> int:
        return 0

    def max_path_length_ext(self, child_maxes) -> Optional[int]:
        return 0

    def provably_empty_ext(self) -> bool:
        return not label_expr_satisfiable(self.expression)

    def evaluate_ext(self, evaluator, max_length: int):
        graph = evaluator.graph
        for node in graph.nodes:
            if satisfies_label_expr(graph.labels(node), self.expression):
                mu = (
                    Assignment({self.variable: node})
                    if self.variable
                    else EMPTY_ASSIGNMENT
                )
                yield (Path.node(node), mu)

    def compile_abstraction_ext(self, builder, compile_child):
        # Over-approximate: label expressions are dropped like conditions.
        start = builder.new_state()
        end = builder.new_state()
        builder.add_epsilon(start, end)
        return start, end


@dataclass(frozen=True)
class EdgeWithLabelExpr(ast.PatternExtension):
    """An edge pattern whose label is a Boolean label expression."""

    direction: Direction
    expression: LabelExpr
    variable: Optional[str] = None

    def children(self) -> tuple[ast.Pattern, ...]:
        return ()

    def own_variables(self) -> frozenset[str]:
        return frozenset({self.variable} if self.variable else ())

    def infer_schema_ext(self, child_schemas: list[dict]) -> dict:
        return {self.variable: EDGE} if self.variable else {}

    def min_path_length_ext(self, child_mins: list[int]) -> int:
        return 1

    def max_path_length_ext(self, child_maxes) -> Optional[int]:
        return 1

    def provably_empty_ext(self) -> bool:
        return not label_expr_satisfiable(self.expression)

    def evaluate_ext(self, evaluator, max_length: int):
        if max_length < 1:
            return
        graph = evaluator.graph

        def mu(edge):
            return (
                Assignment({self.variable: edge})
                if self.variable
                else EMPTY_ASSIGNMENT
            )

        if self.direction in (Direction.FORWARD, Direction.BACKWARD):
            for edge in graph.directed_edges:
                if not satisfies_label_expr(graph.labels(edge), self.expression):
                    continue
                source, target = graph.source(edge), graph.target(edge)
                if self.direction is Direction.FORWARD:
                    yield (Path.of(source, edge, target), mu(edge))
                else:
                    yield (Path.of(target, edge, source), mu(edge))
        else:
            for edge in graph.undirected_edges:
                if not satisfies_label_expr(graph.labels(edge), self.expression):
                    continue
                ends = sorted(graph.endpoints(edge))
                if len(ends) == 1:
                    yield (Path.of(ends[0], edge, ends[0]), mu(edge))
                else:
                    yield (Path.of(ends[0], edge, ends[1]), mu(edge))
                    yield (Path.of(ends[1], edge, ends[0]), mu(edge))

    def compile_abstraction_ext(self, builder, compile_child):
        start = builder.new_state()
        end = builder.new_state()
        builder.add_edge_step(start, EdgeStep(self.direction, None), end)
        return start, end
