"""Identifier sorts for property graphs.

The paper assumes three pairwise-disjoint countable sets of identifiers:
``N`` (nodes), ``E_d`` (directed edges) and ``E_u`` (undirected edges).
We realise each sort as a small immutable wrapper around an arbitrary
hashable key. Wrapping (rather than using bare strings) gives us the
disjointness guarantee *by type*: a ``NodeId("1")`` never compares equal
to a ``DirectedEdgeId("1")``, exactly as in the formal model.
"""

from __future__ import annotations

from typing import Hashable, Union

__all__ = [
    "NodeId",
    "DirectedEdgeId",
    "UndirectedEdgeId",
    "EdgeId",
    "GraphElementId",
]


class _Id:
    """Common behaviour of all identifier sorts.

    Instances are immutable, hashable, and ordered *within a sort* by
    their key (cross-sort comparisons order by sort name so that sorted
    containers of mixed ids are deterministic).
    """

    __slots__ = ("key",)

    #: Short human-readable tag used in ``repr`` (overridden per sort).
    _tag = "id"

    def __init__(self, key: Hashable):
        if isinstance(key, _Id):
            raise TypeError("id keys must be plain hashable values, not ids")
        object.__setattr__(self, "key", key)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.key == other.key  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.key))

    def __lt__(self, other: "_Id") -> bool:
        if not isinstance(other, _Id):
            return NotImplemented
        if type(self) is not type(other):
            return self._tag < other._tag
        try:
            return self.key < other.key  # type: ignore[operator]
        except TypeError:
            return repr(self.key) < repr(other.key)

    def __le__(self, other: "_Id") -> bool:
        return self == other or self < other

    def __reduce__(self):
        # The immutability guard (__setattr__ raises) defeats the
        # default slots pickling path; rebuild through __init__ instead.
        # Ids must pickle: snapshots ship to process-pool workers.
        return (type(self), (self.key,))

    def __repr__(self) -> str:
        return f"{self._tag}({self.key!r})"

    def __str__(self) -> str:
        return str(self.key)


class NodeId(_Id):
    """Identifier of a node (an element of the paper's set ``N``)."""

    __slots__ = ()
    _tag = "node"


class DirectedEdgeId(_Id):
    """Identifier of a directed edge (an element of ``E_d``)."""

    __slots__ = ()
    _tag = "dedge"


class UndirectedEdgeId(_Id):
    """Identifier of an undirected edge (an element of ``E_u``)."""

    __slots__ = ()
    _tag = "uedge"


#: Any edge identifier, directed or undirected.
EdgeId = Union[DirectedEdgeId, UndirectedEdgeId]

#: Any graph element identifier.
GraphElementId = Union[NodeId, DirectedEdgeId, UndirectedEdgeId]
