"""Paths (walks) in property graphs.

A *path* is an alternating sequence ``u0 e1 u1 ... en un`` of nodes and
edges starting and ending with a node (Section 2). Length-0 paths
(single nodes) are allowed and act as units of concatenation. Following
the graph-database literature, paths are what graph theory calls walks:
nodes and edges may repeat.

:class:`Path` is immutable and hashable so it can be used directly as a
semantic value (``V_Path = Paths``) and stored in answer sets.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import PathError
from repro.graph.ids import EdgeId, NodeId
from repro.graph.property_graph import PropertyGraph

__all__ = [
    "Path",
    "concat_paths",
    "is_trail",
    "is_simple",
    "path_in_graph",
]


class Path:
    """An immutable alternating node/edge sequence.

    Construct with :meth:`Path.node` for single-node paths or
    :meth:`Path.of` for the general case. ``elements`` always has odd
    length ``2n + 1`` for a path of length ``n``.
    """

    __slots__ = ("_elements", "_hash")

    def __init__(self, elements: Sequence[NodeId | EdgeId]):
        elements = tuple(elements)
        _validate_alternation(elements)
        object.__setattr__(self, "_elements", elements)
        object.__setattr__(self, "_hash", hash(elements))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Path is immutable")

    def __reduce__(self):
        # The immutability guard defeats default slots pickling;
        # rebuild through __init__ (paths travel to process-pool
        # workers inside answers).
        return (type(self), (self._elements,))

    # -- constructors ---------------------------------------------------

    @classmethod
    def node(cls, node: NodeId) -> "Path":
        """The edgeless path ``path(u)``."""
        return cls((node,))

    @classmethod
    def of(cls, *elements: NodeId | EdgeId) -> "Path":
        """Build ``path(u0, e1, u1, ..., en, un)`` from its elements."""
        return cls(elements)

    # -- the formal accessors -------------------------------------------

    @property
    def elements(self) -> tuple[NodeId | EdgeId, ...]:
        """The full alternating sequence."""
        return self._elements

    @property
    def src(self) -> NodeId:
        """``src(p)``: the first node."""
        return self._elements[0]  # type: ignore[return-value]

    @property
    def tgt(self) -> NodeId:
        """``tgt(p)``: the last node."""
        return self._elements[-1]  # type: ignore[return-value]

    @property
    def endpoints(self) -> tuple[NodeId, NodeId]:
        return (self.src, self.tgt)

    def __len__(self) -> int:
        """``len(p)``: the number of edge occurrences."""
        return (len(self._elements) - 1) // 2

    @property
    def length(self) -> int:
        """Alias for ``len(p)`` readable in expressions."""
        return len(self)

    @property
    def is_edgeless(self) -> bool:
        """Whether this is a length-0 (single node) path."""
        return len(self._elements) == 1

    @property
    def nodes(self) -> tuple[NodeId, ...]:
        """The node occurrences ``u0, ..., un`` in order."""
        return self._elements[0::2]  # type: ignore[return-value]

    @property
    def edges(self) -> tuple[EdgeId, ...]:
        """The edge occurrences ``e1, ..., en`` in order."""
        return self._elements[1::2]  # type: ignore[return-value]

    def steps(self) -> Iterator[tuple[NodeId, EdgeId, NodeId]]:
        """Iterate over ``(u_{i-1}, e_i, u_i)`` triples."""
        els = self._elements
        for i in range(1, len(els), 2):
            yield els[i - 1], els[i], els[i + 1]  # type: ignore[misc]

    @property
    def size(self) -> int:
        """``|p|``: total number of node and edge occurrences (App. C)."""
        return len(self._elements)

    # -- algebra ---------------------------------------------------------

    def concat(self, other: "Path") -> "Path":
        """Concatenation ``p . p'`` — defined iff ``tgt(p) = src(p')``.

        Edgeless paths are units: ``p . path(u) = p`` when ``u =
        tgt(p)``.
        """
        if self.tgt != other.src:
            raise PathError(
                f"paths do not concatenate: tgt {self.tgt!r} != src {other.src!r}"
            )
        return Path(self._elements + other._elements[1:])

    def concatenates_with(self, other: "Path") -> bool:
        """Whether ``self . other`` is defined."""
        return self.tgt == other.src

    def subpath(self, start: int, stop: int) -> "Path":
        """The subpath spanning node positions ``start..stop``
        (inclusive, 0-based over node occurrences)."""
        n = len(self)
        if not (0 <= start <= stop <= n):
            raise PathError(f"invalid subpath bounds {start}..{stop} for length {n}")
        return Path(self._elements[2 * start : 2 * stop + 1])

    def reversed(self) -> "Path":
        """The reverse sequence (useful for backward traversal checks).

        Note: the reverse of a path in *G* is a path in *G* only if all
        its directed edges can be traversed in the opposite direction,
        which the walk relation in Section 2 permits.
        """
        return Path(tuple(reversed(self._elements)))

    # -- dunders ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Path) and self._elements == other._elements

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Path") -> bool:
        """Radix order: by length first, then lexicographically by
        elements. This is the order Theorem 12's enumerator uses."""
        if not isinstance(other, Path):
            return NotImplemented
        if len(self._elements) != len(other._elements):
            return len(self._elements) < len(other._elements)
        return self._elements < other._elements

    def __le__(self, other: "Path") -> bool:
        return self == other or self < other

    def __repr__(self) -> str:
        inner = ", ".join(repr(e) for e in self._elements)
        return f"path({inner})"

    def __iter__(self) -> Iterator[NodeId | EdgeId]:
        return iter(self._elements)


def _validate_alternation(elements: tuple[NodeId | EdgeId, ...]) -> None:
    if not elements:
        raise PathError("a path must contain at least one node")
    if len(elements) % 2 == 0:
        raise PathError("a path must start and end with a node")
    for i, element in enumerate(elements):
        if i % 2 == 0:
            if not isinstance(element, NodeId):
                raise PathError(
                    f"position {i} must be a node, got {element!r}"
                )
        else:
            if isinstance(element, NodeId):
                raise PathError(f"position {i} must be an edge, got {element!r}")


def concat_paths(*paths: Path) -> Path:
    """Concatenate a non-empty sequence of pairwise-concatenating paths."""
    if not paths:
        raise PathError("cannot concatenate zero paths")
    result = paths[0]
    for path in paths[1:]:
        result = result.concat(path)
    return result


def is_trail(path: Path) -> bool:
    """No edge occurs more than once (the ``trail`` restrictor)."""
    edges = path.edges
    return len(edges) == len(set(edges))


def is_simple(path: Path) -> bool:
    """No node occurs more than once (the ``simple`` restrictor)."""
    nodes = path.nodes
    return len(nodes) == len(set(nodes))


def path_in_graph(path: Path, graph: PropertyGraph) -> bool:
    """Whether ``path`` is a path *in* ``graph`` (Section 2).

    Each edge must connect the nodes before and after it: forward,
    backward, or undirected traversal (cases (a)-(c) in the paper).
    """
    if not graph.has_node(path.src):
        return False
    # ``edge in graph.directed_edges`` would scan a snapshot's carrier
    # tuple — O(E) per path step; the membership methods are O(1).
    has_directed = getattr(graph, "has_directed_edge", None)
    has_undirected = getattr(graph, "has_undirected_edge", None)
    for before, edge, after in path.steps():
        if not graph.has_node(before) or not graph.has_node(after):
            return False
        if (
            has_directed(edge)
            if has_directed is not None
            else edge in graph.directed_edges
        ):
            forward = graph.source(edge) == before and graph.target(edge) == after
            backward = graph.source(edge) == after and graph.target(edge) == before
            if not (forward or backward):
                return False
        elif (
            has_undirected(edge)
            if has_undirected is not None
            else edge in graph.undirected_edges
        ):
            if graph.endpoints(edge) != frozenset({before, after}):
                return False
        else:
            return False
    return True
