"""Structured per-version mutation deltas.

Every mutation of a :class:`~repro.graph.property_graph.PropertyGraph`
bumps its version counter by exactly one and records a
:class:`GraphDelta` describing what changed: the elements added or
removed (with enough detail to re-apply the change to an immutable
snapshot) and the property keys touched. A ``remove_node`` cascade —
the node plus every incident edge — is a *single* delta under a single
version bump.

Deltas serve three consumers:

- :meth:`~repro.graph.snapshot.GraphSnapshot.derive` patches the
  previous version's snapshot instead of rebuilding all indexes from
  scratch (the mutation-path analogue of snapshot memoisation);
- :class:`DeltaSummary` — the cheap label/key fingerprint of a delta
  chain — is intersected with per-query read footprints
  (:mod:`repro.gpc.footprint`) so the service result cache invalidates
  semantically instead of globally;
- :class:`~repro.cluster.backends.ProcessBackend` ships pickled delta
  chains to warm workers when the graph version advances by a small
  step, instead of re-shipping the whole snapshot.

Records are frozen dataclasses of plain ids, frozensets and tuples, so
deltas pickle exactly like snapshots do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from repro.graph.ids import (
    DirectedEdgeId,
    GraphElementId,
    NodeId,
    UndirectedEdgeId,
)

__all__ = [
    "NodeRecord",
    "DirectedEdgeRecord",
    "UndirectedEdgeRecord",
    "GraphDelta",
    "DeltaSummary",
    "summarize_deltas",
    "DEFAULT_DELTA_LOG_CAPACITY",
    "DEFAULT_SNAPSHOT_DELTA_THRESHOLD",
]

#: How many per-version deltas a graph retains (a bounded ring); older
#: versions fall off and force consumers back to the rebuild/flush path.
DEFAULT_DELTA_LOG_CAPACITY = 1024

#: Above this many delta operations *relative to graph size* the
#: incremental paths (snapshot derivation, worker delta shipping) fall
#: back to a full rebuild — patching most of the graph costs more than
#: re-indexing it.
DEFAULT_SNAPSHOT_DELTA_THRESHOLD = 0.25


def freeze_properties(properties) -> tuple[tuple[str, Hashable], ...]:
    """A hashable, picklable image of a property map (sorted by key)."""
    if not properties:
        return ()
    return tuple(sorted(properties.items()))


@dataclass(frozen=True)
class NodeRecord:
    """One node as it was added or removed."""

    id: NodeId
    labels: frozenset[str]
    properties: tuple[tuple[str, Hashable], ...] = ()


@dataclass(frozen=True)
class DirectedEdgeRecord:
    """One directed edge as it was added or removed."""

    id: DirectedEdgeId
    source: NodeId
    target: NodeId
    labels: frozenset[str]
    properties: tuple[tuple[str, Hashable], ...] = ()


@dataclass(frozen=True)
class UndirectedEdgeRecord:
    """One undirected edge as it was added or removed."""

    id: UndirectedEdgeId
    endpoints: frozenset[NodeId]
    labels: frozenset[str]
    properties: tuple[tuple[str, Hashable], ...] = ()


@dataclass(frozen=True)
class GraphDelta:
    """Everything one version bump changed.

    ``version`` is the version the graph reached *after* applying this
    delta. A single mutation produces a delta populated in exactly one
    group — except ``remove_node``, whose cascade fills the node and
    both edge removal groups at once.
    """

    version: int
    nodes_added: tuple[NodeRecord, ...] = ()
    nodes_removed: tuple[NodeRecord, ...] = ()
    dedges_added: tuple[DirectedEdgeRecord, ...] = ()
    dedges_removed: tuple[DirectedEdgeRecord, ...] = ()
    uedges_added: tuple[UndirectedEdgeRecord, ...] = ()
    uedges_removed: tuple[UndirectedEdgeRecord, ...] = ()
    #: ``(element, key, value)`` triples from ``set_property``.
    properties_set: tuple[tuple[GraphElementId, str, Hashable], ...] = ()
    #: ``(element, key)`` pairs from ``remove_property``.
    properties_removed: tuple[tuple[GraphElementId, str], ...] = ()

    @property
    def size(self) -> int:
        """Number of primitive operations in this delta."""
        return (
            len(self.nodes_added)
            + len(self.nodes_removed)
            + len(self.dedges_added)
            + len(self.dedges_removed)
            + len(self.uedges_added)
            + len(self.uedges_removed)
            + len(self.properties_set)
            + len(self.properties_removed)
        )

    def summary(self) -> "DeltaSummary":
        """The label/key fingerprint used for semantic invalidation."""
        return summarize_deltas((self,))

    def __repr__(self) -> str:
        groups = []
        for name in (
            "nodes_added",
            "nodes_removed",
            "dedges_added",
            "dedges_removed",
            "uedges_added",
            "uedges_removed",
            "properties_set",
            "properties_removed",
        ):
            count = len(getattr(self, name))
            if count:
                groups.append(f"{name}={count}")
        detail = ", ".join(groups) if groups else "empty"
        return f"GraphDelta(version={self.version}, {detail})"


@dataclass(frozen=True)
class DeltaSummary:
    """What a delta chain *could have touched*, as a cheap fingerprint.

    Per element class: whether any element of that class was added or
    removed, and the union of the labels those elements carry (an
    unlabelled element contributes to the ``*_changed`` flag but to no
    label set — only an unconstrained footprint can observe it).
    ``node_property_keys`` / ``edge_property_keys`` collect keys from
    explicit property mutations, split by the mutated element's class
    (both edge classes share one set — conditions observe edge
    properties the same way regardless of direction); properties riding
    on added/removed elements are already covered by the element-class
    flags, because a query can only observe them through the element
    itself.

    A query whose :class:`~repro.gpc.footprint.QueryFootprint` is
    disjoint from this summary is guaranteed to have equal answers
    before and after the chain.
    """

    nodes_changed: bool = False
    node_labels: frozenset[str] = frozenset()
    dedges_changed: bool = False
    dedge_labels: frozenset[str] = frozenset()
    uedges_changed: bool = False
    uedge_labels: frozenset[str] = frozenset()
    node_property_keys: frozenset[str] = frozenset()
    edge_property_keys: frozenset[str] = frozenset()

    @property
    def property_keys(self) -> frozenset[str]:
        """All mutated keys regardless of class (back-compat view)."""
        return self.node_property_keys | self.edge_property_keys

    @property
    def is_empty(self) -> bool:
        return not (
            self.nodes_changed
            or self.dedges_changed
            or self.uedges_changed
            or self.node_property_keys
            or self.edge_property_keys
        )

    def describe(self) -> str:
        parts = []
        if self.nodes_changed:
            parts.append(f"nodes{sorted(self.node_labels)}")
        if self.dedges_changed:
            parts.append(f"directed{sorted(self.dedge_labels)}")
        if self.uedges_changed:
            parts.append(f"undirected{sorted(self.uedge_labels)}")
        if self.node_property_keys:
            parts.append(f"node-keys{sorted(self.node_property_keys)}")
        if self.edge_property_keys:
            parts.append(f"edge-keys{sorted(self.edge_property_keys)}")
        return " + ".join(parts) if parts else "(no changes)"


def summarize_deltas(deltas: Sequence[GraphDelta]) -> DeltaSummary:
    """Merge a delta chain into one :class:`DeltaSummary`."""
    nodes_changed = dedges_changed = uedges_changed = False
    node_labels: set[str] = set()
    dedge_labels: set[str] = set()
    uedge_labels: set[str] = set()
    node_property_keys: set[str] = set()
    edge_property_keys: set[str] = set()

    def _labels(records: Iterable) -> Iterable[frozenset[str]]:
        for record in records:
            yield record.labels

    for delta in deltas:
        if delta.nodes_added or delta.nodes_removed:
            nodes_changed = True
            for labels in _labels(delta.nodes_added):
                node_labels.update(labels)
            for labels in _labels(delta.nodes_removed):
                node_labels.update(labels)
        if delta.dedges_added or delta.dedges_removed:
            dedges_changed = True
            for labels in _labels(delta.dedges_added):
                dedge_labels.update(labels)
            for labels in _labels(delta.dedges_removed):
                dedge_labels.update(labels)
        if delta.uedges_added or delta.uedges_removed:
            uedges_changed = True
            for labels in _labels(delta.uedges_added):
                uedge_labels.update(labels)
            for labels in _labels(delta.uedges_removed):
                uedge_labels.update(labels)
        for element, key, _value in delta.properties_set:
            if isinstance(element, NodeId):
                node_property_keys.add(key)
            else:
                edge_property_keys.add(key)
        for element, key in delta.properties_removed:
            if isinstance(element, NodeId):
                node_property_keys.add(key)
            else:
                edge_property_keys.add(key)

    return DeltaSummary(
        nodes_changed=nodes_changed,
        node_labels=frozenset(node_labels),
        dedges_changed=dedges_changed,
        dedge_labels=frozenset(dedge_labels),
        uedges_changed=uedges_changed,
        uedge_labels=frozenset(uedge_labels),
        node_property_keys=frozenset(node_property_keys),
        edge_property_keys=frozenset(edge_property_keys),
    )
