"""JSON serialization for property graphs.

The format is a plain JSON object with ``nodes``, ``directed_edges``
and ``undirected_edges`` arrays. Identifier keys are serialized as
strings; non-string keys are tagged so that round-tripping preserves
them exactly.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import GraphError
from repro.graph.ids import DirectedEdgeId, NodeId, UndirectedEdgeId
from repro.graph.property_graph import PropertyGraph

__all__ = ["graph_to_dict", "graph_from_dict", "dumps", "loads"]

_FORMAT = "repro/property-graph@1"


def _encode_key(key: Any) -> Any:
    if isinstance(key, str):
        return key
    if isinstance(key, bool) or not isinstance(key, (int, float)):
        raise GraphError(f"cannot serialize id key {key!r}")
    return {"$num": key}


def _decode_key(value: Any) -> Any:
    if isinstance(value, dict) and "$num" in value:
        return value["$num"]
    return value


def graph_to_dict(graph: PropertyGraph) -> dict[str, Any]:
    """Serialize a graph to a JSON-compatible dictionary."""
    nodes = []
    for node in graph.iter_nodes():
        nodes.append(
            {
                "id": _encode_key(node.key),
                "labels": sorted(graph.labels(node)),
                "properties": dict(graph.properties(node)),
            }
        )
    directed = []
    for edge in graph.iter_directed_edges():
        directed.append(
            {
                "id": _encode_key(edge.key),
                "source": _encode_key(graph.source(edge).key),
                "target": _encode_key(graph.target(edge).key),
                "labels": sorted(graph.labels(edge)),
                "properties": dict(graph.properties(edge)),
            }
        )
    undirected = []
    for edge in graph.iter_undirected_edges():
        ends = sorted(graph.endpoints(edge))
        undirected.append(
            {
                "id": _encode_key(edge.key),
                "endpoints": [_encode_key(n.key) for n in ends],
                "labels": sorted(graph.labels(edge)),
                "properties": dict(graph.properties(edge)),
            }
        )
    return {
        "format": _FORMAT,
        "nodes": nodes,
        "directed_edges": directed,
        "undirected_edges": undirected,
    }


def graph_from_dict(data: dict[str, Any]) -> PropertyGraph:
    """Deserialize a graph from :func:`graph_to_dict` output."""
    if data.get("format") != _FORMAT:
        raise GraphError(f"unsupported format {data.get('format')!r}")
    graph = PropertyGraph()
    for entry in data.get("nodes", []):
        graph.add_node(
            NodeId(_decode_key(entry["id"])),
            labels=entry.get("labels", ()),
            properties=entry.get("properties") or None,
        )
    for entry in data.get("directed_edges", []):
        graph.add_edge(
            DirectedEdgeId(_decode_key(entry["id"])),
            NodeId(_decode_key(entry["source"])),
            NodeId(_decode_key(entry["target"])),
            labels=entry.get("labels", ()),
            properties=entry.get("properties") or None,
        )
    for entry in data.get("undirected_edges", []):
        ends = [NodeId(_decode_key(k)) for k in entry["endpoints"]]
        if len(ends) == 1:
            ends = ends * 2
        graph.add_undirected_edge(
            UndirectedEdgeId(_decode_key(entry["id"])),
            ends[0],
            ends[1],
            labels=entry.get("labels", ()),
            properties=entry.get("properties") or None,
        )
    return graph


def dumps(graph: PropertyGraph, indent: int | None = None) -> str:
    """Serialize a graph to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent, sort_keys=True)


def loads(text: str) -> PropertyGraph:
    """Deserialize a graph from a JSON string."""
    return graph_from_dict(json.loads(text))
