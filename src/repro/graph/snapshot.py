"""Immutable, columnar snapshots of a property graph.

:class:`GraphSnapshot` is a frozen view of a
:class:`~repro.graph.property_graph.PropertyGraph` taken at a specific
:attr:`~GraphSnapshot.version`. Its accessors keep the exact contracts
of the original tuple/dict layout (element-id types, sorted iteration
order, tuple-returning adjacency), but the data lives in a columnar
core (:class:`repro.graph.columns.SnapshotColumns`):

- node/edge ids interned into dense integers, CSR (offsets + column)
  adjacency in ``array`` buffers, interned label sets, per-key
  property columns;
- the public accessors are a **thin view** over that core — they
  rebuild id-typed tuples lazily and memoise them, so the engine, the
  footprint layer, and the cluster code see the same API as before;
- the register-NFA ``shortest`` search and the hash join use the dense
  ids directly (:meth:`dense_start_key` / :meth:`dense_key`), skipping
  the view layer entirely on clean data.

**Derivation** (:meth:`derive`) is copy-on-write at the *overlay*
level: a derived snapshot shares its base's immutable core and layers
small dicts on top — patched adjacency rows, added/removed elements,
replaced property dicts, patched per-label membership tuples. Cost is
proportional to the delta, not the graph, which preserves the >=5x
derive-vs-rebuild bench (``bench_a6_incremental.py``). The overlays
also record which dense rows are *dirty* (adjacency patched) or
*shadowed* (a core id re-added with new labels), so the dense engine
fast paths fall back to the view exactly where the core is stale.

**Pickling** goes through :meth:`__reduce__`: the core ships as raw
id keys plus ``array.tobytes()`` buffers (one memcpy per column)
instead of a deep object pickle — the payoff for
:class:`~repro.cluster.backends.ProcessBackend` snapshot shipping.

Snapshots are safe to read from many threads concurrently (lazy memos
are idempotent dict fills) and are memoised per graph version by
:meth:`PropertyGraph.snapshot`.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from time import perf_counter
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

from repro.errors import GraphError, UnknownIdError
from repro.graph.columns import SnapshotColumns, build_columns
from repro.graph.delta import GraphDelta
from repro.graph.ids import (
    DirectedEdgeId,
    EdgeId,
    GraphElementId,
    NodeId,
    UndirectedEdgeId,
)
from repro.obs.counters import active_counters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.property_graph import Constant, PropertyGraph

__all__ = ["GraphSnapshot"]

_EMPTY: tuple = ()
_EMPTY_SET: frozenset = frozenset()


# ---------------------------------------------------------------------------
# Incremental-derivation helpers
# ---------------------------------------------------------------------------


def _tuple_insert(items: tuple, item) -> tuple:
    """Insert into a sorted tuple (O(log n) compares + one slice copy)."""
    index = bisect_left(items, item)
    return items[:index] + (item,) + items[index:]


def _tuple_discard(items: tuple, item) -> tuple:
    """Remove from a sorted tuple if present (bisect, no re-sort)."""
    index = bisect_left(items, item)
    if index < len(items) and items[index] == item:
        return items[:index] + items[index + 1 :]
    return items


class _NetChange:
    """Net membership change of one sorted collection across a chain.

    Re-adding an element the chain removed (or removing one it added)
    cancels out, so big membership tuples are patched once with the
    *net* effect instead of once per operation.
    """

    __slots__ = ("added", "removed")

    def __init__(self) -> None:
        self.added: set = set()
        self.removed: set = set()

    def add(self, item) -> None:
        if item in self.removed:
            self.removed.discard(item)
        else:
            self.added.add(item)

    def remove(self, item) -> None:
        if item in self.added:
            self.added.discard(item)
        else:
            self.removed.add(item)

    def __bool__(self) -> bool:
        return bool(self.added or self.removed)

    def patch(self, items: tuple) -> tuple:
        """Apply this net change to a sorted tuple."""
        out = list(items)
        for item in sorted(self.removed, reverse=True):
            index = bisect_left(out, item)
            if index < len(out) and out[index] == item:
                del out[index]
        for item in self.added:
            insort(out, item)
        return tuple(out)


def _net(nets: dict, label: str) -> _NetChange:
    net = nets.get(label)
    if net is None:
        net = nets[label] = _NetChange()
    return net


class GraphSnapshot:
    """A read-only, fully indexed copy of one graph version.

    Construct via :meth:`PropertyGraph.snapshot` (memoised per version)
    rather than directly; direct construction always re-copies.
    """

    __slots__ = (
        "version",
        "derived",
        "_core",
        # Overlays — all empty on a rebuilt snapshot. ``_removed``
        # holds real ids whose core entry is no longer authoritative;
        # ``_shadow`` holds dense *node* ids re-added with possibly new
        # labels (their core labelset is stale); ``_dirty`` holds dense
        # node ids whose adjacency rows were patched.
        "_removed",
        "_shadow",
        "_dirty",
        "_ovl_node_labels",
        "_ovl_dedge_labels",
        "_ovl_uedge_labels",
        "_ovl_src",
        "_ovl_tgt",
        "_ovl_endpoints",
        "_ovl_props",
        "_row_out",
        "_row_in",
        "_row_und",
        "_ovl_nodes_by_label",
        "_ovl_dedges_by_label",
        "_ovl_uedges_by_label",
        # Lazy memos (never pickled; rebuilt on demand).
        "_nodes",
        "_dedges",
        "_uedges",
        "_memo_out",
        "_memo_in",
        "_memo_und",
        "_memo_nbl",
        "_memo_dbl",
        "_memo_ubl",
        "_memo_endpoints",
        "_memo_all_labels",
        "_label_cards",
        "_mask_cache",
        # Metadata / observability.
        "_overlay_ops",
        "build_s",
        "csr_rows_patched",
    )

    def __init__(self, graph: "PropertyGraph") -> None:
        started = perf_counter()
        self.version = graph.version
        #: Whether this snapshot was produced by :meth:`derive` rather
        #: than a full rebuild (observability; no behavioural impact).
        self.derived = False
        self._core = build_columns(graph)
        self._removed = _EMPTY_SET
        self._shadow = _EMPTY_SET
        self._dirty = _EMPTY_SET
        self._ovl_node_labels = {}
        self._ovl_dedge_labels = {}
        self._ovl_uedge_labels = {}
        self._ovl_src = {}
        self._ovl_tgt = {}
        self._ovl_endpoints = {}
        self._ovl_props = {}
        self._row_out = {}
        self._row_in = {}
        self._row_und = {}
        self._ovl_nodes_by_label = {}
        self._ovl_dedges_by_label = {}
        self._ovl_uedges_by_label = {}
        self._init_memos()
        self._overlay_ops = 0
        #: Seconds spent interning/building the CSR core (or patching
        #: overlays when derived) — aggregated into ``ServiceStats``.
        self.build_s = perf_counter() - started
        #: Adjacency rows rewritten copy-on-write by :meth:`derive`
        #: (0 for a full rebuild).
        self.csr_rows_patched = 0

    def _init_memos(self) -> None:
        self._nodes = None
        self._dedges = None
        self._uedges = None
        self._memo_out = {}
        self._memo_in = {}
        self._memo_und = {}
        self._memo_nbl = {}
        self._memo_dbl = {}
        self._memo_ubl = {}
        self._memo_endpoints = {}
        self._memo_all_labels = None
        self._label_cards = None
        self._mask_cache = {}

    @property
    def overlay_ops(self) -> int:
        """Accumulated delta operations layered over the core.

        Grows along derive chains; :meth:`PropertyGraph.snapshot` uses
        it to fall back to a full rebuild (fresh core, empty overlays)
        once the overlays stop being "small"."""
        return self._overlay_ops

    # ------------------------------------------------------------------
    # Incremental derivation
    # ------------------------------------------------------------------

    @classmethod
    def derive(
        cls, base: "GraphSnapshot", deltas: Sequence[GraphDelta]
    ) -> "GraphSnapshot":
        """Patch ``base`` with a contiguous delta chain.

        Returns a snapshot semantically identical to a full rebuild at
        the chain's final version, but built by sharing ``base``'s
        immutable columnar core and copying only the (small) overlay
        dicts. Adjacency rows touched by the chain are rewritten as
        id-typed tuples in the row overlay; everything else stays in
        the CSR columns. Cost is ``O(|delta| + |overlay|)`` rather than
        the rebuild's ``O(n log n)`` — the win the mutation path needs.

        The chain must start at ``base.version + 1`` and be
        consecutive; anything else raises :class:`GraphError` (callers
        fall back to a rebuild).
        """
        if not deltas:
            return base
        started = perf_counter()
        expected = base.version
        for delta in deltas:
            expected += 1
            if delta.version != expected:
                raise GraphError(
                    f"delta chain is not contiguous from version "
                    f"{base.version}: expected {expected}, "
                    f"got {delta.version}"
                )

        core = base._core
        dense = core.dense
        n_nodes = core.n_nodes
        removed = set(base._removed)
        shadow = set(base._shadow)
        dirty = set(base._dirty)
        ovl_nl = dict(base._ovl_node_labels)
        ovl_dl = dict(base._ovl_dedge_labels)
        ovl_ul = dict(base._ovl_uedge_labels)
        ovl_src = dict(base._ovl_src)
        ovl_tgt = dict(base._ovl_tgt)
        ovl_end = dict(base._ovl_endpoints)
        ovl_props = dict(base._ovl_props)
        row_out = dict(base._row_out)
        row_in = dict(base._row_in)
        row_und = dict(base._row_und)
        rows_patched = 0
        ops = 0

        node_label_nets: dict[str, _NetChange] = {}
        dedge_label_nets: dict[str, _NetChange] = {}
        uedge_label_nets: dict[str, _NetChange] = {}

        def current_row(rows: dict, node, accessor) -> tuple:
            row = rows.get(node)
            return row if row is not None else accessor(node)

        def patch_row(rows: dict, node, new_row: tuple) -> None:
            nonlocal rows_patched
            rows[node] = new_row
            rows_patched += 1
            d = dense.get(node)
            if d is not None and d < n_nodes:
                dirty.add(d)

        def current_props(element) -> dict:
            entry = ovl_props.get(element)
            if entry is not None:
                return dict(entry)
            d = dense.get(element)
            if d is None:
                return {}
            return {
                key: col[d]
                for key, col in core.prop_cols.items()
                if d in col
            }

        for delta in deltas:
            ops += delta.size
            # Removals first (edge before node: a cascade's adjacency
            # entries must be empty before its node entry is dropped),
            # then additions (node before edge), then property edits —
            # the same order the mutable graph applied them in.
            for record in delta.dedges_removed:
                edge = record.id
                if ovl_dl.pop(edge, None) is not None:
                    ovl_src.pop(edge, None)
                    ovl_tgt.pop(edge, None)
                else:
                    removed.add(edge)
                ovl_props.pop(edge, None)
                patch_row(
                    row_out,
                    record.source,
                    _tuple_discard(
                        current_row(row_out, record.source, base.out_edges),
                        edge,
                    ),
                )
                patch_row(
                    row_in,
                    record.target,
                    _tuple_discard(
                        current_row(row_in, record.target, base.in_edges),
                        edge,
                    ),
                )
                for label in record.labels:
                    _net(dedge_label_nets, label).remove(edge)
            for record in delta.uedges_removed:
                edge = record.id
                if ovl_ul.pop(edge, None) is not None:
                    ovl_end.pop(edge, None)
                else:
                    removed.add(edge)
                ovl_props.pop(edge, None)
                for endpoint in record.endpoints:
                    patch_row(
                        row_und,
                        endpoint,
                        _tuple_discard(
                            current_row(
                                row_und, endpoint, base.undirected_edges_at
                            ),
                            edge,
                        ),
                    )
                for label in record.labels:
                    _net(uedge_label_nets, label).remove(edge)
            for record in delta.nodes_removed:
                node = record.id
                if ovl_nl.pop(node, None) is None:
                    removed.add(node)
                ovl_props.pop(node, None)
                row_out.pop(node, None)
                row_in.pop(node, None)
                row_und.pop(node, None)
                for label in record.labels:
                    _net(node_label_nets, label).remove(node)
            for record in delta.nodes_added:
                node = record.id
                ovl_nl[node] = record.labels
                ovl_props[node] = dict(record.properties)
                row_out[node] = _EMPTY
                row_in[node] = _EMPTY
                row_und[node] = _EMPTY
                d = dense.get(node)
                if d is not None:
                    # Re-added core id: its core labelset/rows are
                    # stale, so the dense fast paths must treat it as
                    # an overlay element from now on.
                    shadow.add(d)
                    dirty.add(d)
                for label in record.labels:
                    _net(node_label_nets, label).add(node)
            for record in delta.dedges_added:
                edge = record.id
                ovl_dl[edge] = record.labels
                ovl_src[edge] = record.source
                ovl_tgt[edge] = record.target
                ovl_props[edge] = dict(record.properties)
                patch_row(
                    row_out,
                    record.source,
                    _tuple_insert(
                        current_row(row_out, record.source, base.out_edges),
                        edge,
                    ),
                )
                patch_row(
                    row_in,
                    record.target,
                    _tuple_insert(
                        current_row(row_in, record.target, base.in_edges),
                        edge,
                    ),
                )
                for label in record.labels:
                    _net(dedge_label_nets, label).add(edge)
            for record in delta.uedges_added:
                edge = record.id
                ovl_ul[edge] = record.labels
                ovl_end[edge] = record.endpoints
                ovl_props[edge] = dict(record.properties)
                for endpoint in record.endpoints:
                    patch_row(
                        row_und,
                        endpoint,
                        _tuple_insert(
                            current_row(
                                row_und, endpoint, base.undirected_edges_at
                            ),
                            edge,
                        ),
                    )
                for label in record.labels:
                    _net(uedge_label_nets, label).add(edge)
            for element, key, value in delta.properties_set:
                entry = current_props(element)
                entry[key] = value
                ovl_props[element] = entry
            for element, key in delta.properties_removed:
                entry = current_props(element)
                entry.pop(key, None)
                # An empty dict entry still masks stale core columns.
                ovl_props[element] = entry

        # Per-label membership overlays: patch the base's *current*
        # members with the chain's net change. A label emptied by the
        # chain keeps a ``()`` sentinel so core columns stay masked —
        # ``all_labels`` skips sentinels, so no ghost labels survive.
        ovl_bl_n = dict(base._ovl_nodes_by_label)
        ovl_bl_d = dict(base._ovl_dedges_by_label)
        ovl_bl_u = dict(base._ovl_uedges_by_label)
        for overlay, nets, accessor in (
            (ovl_bl_n, node_label_nets, base.nodes_with_label),
            (ovl_bl_d, dedge_label_nets, base.directed_edges_with_label),
            (ovl_bl_u, uedge_label_nets, base.undirected_edges_with_label),
        ):
            for label, net in nets.items():
                if not net:
                    continue
                current = overlay.get(label)
                if current is None:
                    current = accessor(label)
                overlay[label] = net.patch(current)

        snap = object.__new__(cls)
        snap.version = expected
        snap.derived = True
        snap._core = core
        snap._removed = removed
        snap._shadow = shadow
        snap._dirty = dirty
        snap._ovl_node_labels = ovl_nl
        snap._ovl_dedge_labels = ovl_dl
        snap._ovl_uedge_labels = ovl_ul
        snap._ovl_src = ovl_src
        snap._ovl_tgt = ovl_tgt
        snap._ovl_endpoints = ovl_end
        snap._ovl_props = ovl_props
        snap._row_out = row_out
        snap._row_in = row_in
        snap._row_und = row_und
        snap._ovl_nodes_by_label = ovl_bl_n
        snap._ovl_dedges_by_label = ovl_bl_d
        snap._ovl_uedges_by_label = ovl_bl_u
        snap._init_memos()
        snap._overlay_ops = base._overlay_ops + ops
        snap.csr_rows_patched = rows_patched
        if base._label_cards is not None:
            snap._label_cards = base._label_cards.patched(
                num_nodes=snap.num_nodes,
                num_directed_edges=snap.num_directed_edges,
                num_undirected_edges=snap.num_undirected_edges,
                node_counts={
                    label: snap.num_nodes_with_label(label)
                    for label, net in node_label_nets.items()
                    if net
                },
                directed_edge_counts={
                    label: snap.num_directed_edges_with_label(label)
                    for label, net in dedge_label_nets.items()
                    if net
                },
                undirected_edge_counts={
                    label: snap.num_undirected_edges_with_label(label)
                    for label, net in uedge_label_nets.items()
                    if net
                },
            )
        snap.build_s = perf_counter() - started
        return snap

    # ------------------------------------------------------------------
    # Buffer pickling (ProcessBackend snapshot shipping)
    # ------------------------------------------------------------------

    def __reduce__(self):
        return (
            _rebuild_snapshot,
            (
                self.version,
                self.derived,
                self._core.payload(),
                self._overlay_payload(),
                self._overlay_ops,
                self.csr_rows_patched,
            ),
        )

    def _overlay_payload(self):
        if not (
            self._removed
            or self._ovl_node_labels
            or self._ovl_dedge_labels
            or self._ovl_uedge_labels
            or self._ovl_props
            or self._row_out
            or self._row_in
            or self._row_und
            or self._ovl_nodes_by_label
            or self._ovl_dedges_by_label
            or self._ovl_uedges_by_label
        ):
            return None
        return (
            frozenset(self._removed),
            frozenset(self._shadow),
            frozenset(self._dirty),
            self._ovl_node_labels,
            self._ovl_dedge_labels,
            self._ovl_uedge_labels,
            self._ovl_src,
            self._ovl_tgt,
            self._ovl_endpoints,
            self._ovl_props,
            self._row_out,
            self._row_in,
            self._row_und,
            self._ovl_nodes_by_label,
            self._ovl_dedges_by_label,
            self._ovl_uedges_by_label,
        )

    # ------------------------------------------------------------------
    # Dense-id fast-path hooks (engine-facing)
    # ------------------------------------------------------------------

    def dense_key(self, element: GraphElementId):
        """A hash/equality-stable compact key for ``element``.

        Returns the interned dense int when the element is in the core
        and not shadowed, else the element itself. Deterministic per
        snapshot — equal elements always map to equal keys — which is
        all the hash join and the register search need.
        """
        d = self._core.dense.get(element)
        if d is None or (self._shadow and d in self._shadow):
            return element
        return d

    def dense_start_key(self, node: NodeId):
        """Like :meth:`dense_key` but only for *valid current nodes*
        (register-search seeds come from the carriers)."""
        core = self._core
        d = core.dense.get(node)
        if (
            d is None
            or d >= core.n_nodes
            or (self._shadow and d in self._shadow)
            or (self._removed and node in self._removed)
        ):
            return node
        return d

    @property
    def pristine(self) -> bool:
        """True when no overlay masks the core.

        Every element is then a live core element whose columns (and
        bitmask indexes) are authoritative, so register-free searches
        may run entirely on dense ints without per-element fallbacks.
        """
        return not (
            self._removed
            or self._shadow
            or self._dirty
            or self._ovl_node_labels
            or self._ovl_dedge_labels
            or self._ovl_uedge_labels
            or self._ovl_src
            or self._ovl_tgt
            or self._ovl_endpoints
            or self._ovl_props
            or self._row_out
            or self._row_in
            or self._row_und
            or self._ovl_nodes_by_label
            or self._ovl_dedges_by_label
            or self._ovl_uedges_by_label
        )

    def label_mask(self, label: str) -> bytes:
        """Dense-id bitmask of core label membership for ``label``.

        Valid for any *non-shadowed* dense id: label edits always force
        the element into the shadow/overlay path, so the core mask is
        never stale for ids the dense search keeps as ints. Unknown
        labels yield the cached all-zero mask.
        """
        core = self._core
        return core.label_mask(core.label_index.get(label, -1))

    def property_mask(self, key: str, const) -> bytes:
        """Dense-id bitmask of ``element.key = const`` *at this version*.

        The base mask comes from the shared immutable core
        (:meth:`SnapshotColumns.prop_mask`); snapshots with property
        overlays or removals patch a private copy — set the bit iff the
        overlaid value is defined and equal, clear it for removed
        elements — and cache it in ``_mask_cache``. The cache is
        per-snapshot (reset by ``_init_memos`` on derive/unpickle), so
        a delta chain can never see a stale mask. Mirrors
        :meth:`get_property`'s ``_ovl_props``-first resolution exactly.
        """
        cache = self._mask_cache
        cache_key = (key, const)
        mask = cache.get(cache_key)
        if mask is None:
            mask = self._core.prop_mask(key, const)
            ovl = self._ovl_props
            removed = self._removed
            if ovl or removed:
                buf = bytearray(mask)
                dense = self._core.dense
                for element, props in ovl.items():
                    d = dense.get(element)
                    if d is None:
                        continue
                    value = props.get(key)
                    if value is not None and value == const:
                        buf[d >> 3] |= 1 << (d & 7)
                    else:
                        buf[d >> 3] &= 0xFF ^ (1 << (d & 7))
                for element in removed:
                    d = dense.get(element)
                    if d is not None:
                        buf[d >> 3] &= 0xFF ^ (1 << (d & 7))
                mask = bytes(buf)
                counters = active_counters()
                if counters is not None:
                    counters.masks_built += 1
            cache[cache_key] = mask
        return mask

    # ------------------------------------------------------------------
    # Formal accessors (same contracts as PropertyGraph)
    # ------------------------------------------------------------------

    def labels(self, element: GraphElementId) -> frozenset[str]:
        core = self._core
        d = core.dense.get(element)
        if d is not None and not (self._removed and element in self._removed):
            return core.labelsets[core.labelset_of[d]]
        for table in (
            self._ovl_node_labels,
            self._ovl_dedge_labels,
            self._ovl_uedge_labels,
        ):
            if table and element in table:
                return table[element]
        raise UnknownIdError(f"unknown element {element!r}")

    def source(self, edge: DirectedEdgeId) -> NodeId:
        core = self._core
        d = core.dense.get(edge)
        if d is not None and not (self._removed and edge in self._removed):
            n = core.n_nodes
            if n <= d < n + core.n_dedges:
                return core.elements[core.src_col[d - n]]
            raise UnknownIdError(f"unknown directed edge {edge!r}")
        ovl = self._ovl_src
        if ovl and edge in ovl:
            return ovl[edge]
        raise UnknownIdError(f"unknown directed edge {edge!r}")

    def target(self, edge: DirectedEdgeId) -> NodeId:
        core = self._core
        d = core.dense.get(edge)
        if d is not None and not (self._removed and edge in self._removed):
            n = core.n_nodes
            if n <= d < n + core.n_dedges:
                return core.elements[core.tgt_col[d - n]]
            raise UnknownIdError(f"unknown directed edge {edge!r}")
        ovl = self._ovl_tgt
        if ovl and edge in ovl:
            return ovl[edge]
        raise UnknownIdError(f"unknown directed edge {edge!r}")

    def endpoints(self, edge: UndirectedEdgeId) -> frozenset[NodeId]:
        core = self._core
        d = core.dense.get(edge)
        if d is not None and not (self._removed and edge in self._removed):
            first = core.n_nodes + core.n_dedges
            if d < first:
                raise UnknownIdError(f"unknown undirected edge {edge!r}")
            memo = self._memo_endpoints
            ends = memo.get(edge)
            if ends is None:
                j = d - first
                elements = core.elements
                ends = memo[edge] = frozenset(
                    (elements[core.ua_col[j]], elements[core.ub_col[j]])
                )
            return ends
        ovl = self._ovl_endpoints
        if ovl and edge in ovl:
            return ovl[edge]
        raise UnknownIdError(f"unknown undirected edge {edge!r}")

    def get_property(self, element: GraphElementId, key: str) -> "Constant | None":
        ovl = self._ovl_props
        if ovl and element in ovl:
            return ovl[element].get(key)
        core = self._core
        d = core.dense.get(element)
        if d is not None and not (self._removed and element in self._removed):
            col = core.prop_cols.get(key)
            return col.get(d) if col is not None else None
        if self._has_overlay_element(element):
            return None
        raise UnknownIdError(f"unknown element {element!r}")

    def has_property(self, element: GraphElementId, key: str) -> bool:
        return self.get_property(element, key) is not None

    def properties(self, element: GraphElementId) -> Mapping[str, "Constant"]:
        ovl = self._ovl_props
        if ovl and element in ovl:
            return dict(ovl[element])
        core = self._core
        d = core.dense.get(element)
        if d is not None and not (self._removed and element in self._removed):
            return {
                key: col[d]
                for key, col in core.prop_cols.items()
                if d in col
            }
        if self._has_overlay_element(element):
            return {}
        raise UnknownIdError(f"unknown element {element!r}")

    def _has_overlay_element(self, element) -> bool:
        for table in (
            self._ovl_node_labels,
            self._ovl_dedge_labels,
            self._ovl_uedge_labels,
        ):
            if table and element in table:
                return True
        return False

    # ------------------------------------------------------------------
    # Carrier sets and counting
    # ------------------------------------------------------------------

    def _carrier(self, base: tuple, id_type: type, overlay: dict) -> tuple:
        removed = self._removed
        if not removed and not overlay:
            return base
        items = list(base)
        if removed:
            for item in sorted(
                (x for x in removed if type(x) is id_type), reverse=True
            ):
                index = bisect_left(items, item)
                if index < len(items) and items[index] == item:
                    del items[index]
        for item in overlay:
            insort(items, item)
        return tuple(items)

    @property
    def nodes(self) -> tuple[NodeId, ...]:
        """The node set ``N`` as a sorted tuple."""
        out = self._nodes
        if out is None:
            out = self._nodes = self._carrier(
                self._core.node_ids, NodeId, self._ovl_node_labels
            )
        return out

    @property
    def directed_edges(self) -> tuple[DirectedEdgeId, ...]:
        out = self._dedges
        if out is None:
            out = self._dedges = self._carrier(
                self._core.dedge_ids, DirectedEdgeId, self._ovl_dedge_labels
            )
        return out

    @property
    def undirected_edges(self) -> tuple[UndirectedEdgeId, ...]:
        out = self._uedges
        if out is None:
            out = self._uedges = self._carrier(
                self._core.uedge_ids, UndirectedEdgeId, self._ovl_uedge_labels
            )
        return out

    def _count(self, core_count: int, id_type: type, overlay: dict) -> int:
        if self._removed:
            core_count -= sum(
                1 for x in self._removed if type(x) is id_type
            )
        return core_count + len(overlay)

    @property
    def num_nodes(self) -> int:
        cached = self._nodes
        if cached is not None:
            return len(cached)
        return self._count(self._core.n_nodes, NodeId, self._ovl_node_labels)

    @property
    def num_directed_edges(self) -> int:
        cached = self._dedges
        if cached is not None:
            return len(cached)
        return self._count(
            self._core.n_dedges, DirectedEdgeId, self._ovl_dedge_labels
        )

    @property
    def num_undirected_edges(self) -> int:
        cached = self._uedges
        if cached is not None:
            return len(cached)
        return self._count(
            self._core.n_uedges, UndirectedEdgeId, self._ovl_uedge_labels
        )

    @property
    def num_edges(self) -> int:
        return self.num_directed_edges + self.num_undirected_edges

    def iter_nodes(self) -> Iterator[NodeId]:
        return iter(self.nodes)

    def iter_directed_edges(self) -> Iterator[DirectedEdgeId]:
        return iter(self.directed_edges)

    def iter_undirected_edges(self) -> Iterator[UndirectedEdgeId]:
        return iter(self.undirected_edges)

    # ------------------------------------------------------------------
    # Label indexes (O(1) lookups, unlike the mutable graph's scans)
    # ------------------------------------------------------------------

    def _core_label_members(
        self, table: dict, label: str, memo: dict
    ) -> tuple:
        hit = memo.get(label)
        if hit is not None:
            return hit
        core = self._core
        li = core.label_index.get(label)
        arr = table.get(li) if li is not None else None
        if arr is None:
            hit = _EMPTY
        else:
            elements = core.elements
            hit = tuple(elements[d] for d in arr)
        memo[label] = hit
        return hit

    def nodes_with_label(self, label: str) -> tuple[NodeId, ...]:
        ovl = self._ovl_nodes_by_label
        if ovl:
            hit = ovl.get(label)
            if hit is not None:
                return hit
        return self._core_label_members(
            self._core.nodes_by_label, label, self._memo_nbl
        )

    def directed_edges_with_label(self, label: str) -> tuple[DirectedEdgeId, ...]:
        ovl = self._ovl_dedges_by_label
        if ovl:
            hit = ovl.get(label)
            if hit is not None:
                return hit
        return self._core_label_members(
            self._core.dedges_by_label, label, self._memo_dbl
        )

    def undirected_edges_with_label(
        self, label: str
    ) -> tuple[UndirectedEdgeId, ...]:
        ovl = self._ovl_uedges_by_label
        if ovl:
            hit = ovl.get(label)
            if hit is not None:
                return hit
        return self._core_label_members(
            self._core.uedges_by_label, label, self._memo_ubl
        )

    def all_labels(self) -> frozenset[str]:
        out = self._memo_all_labels
        if out is not None:
            return out
        core = self._core
        names = core.label_names
        found: set[str] = set()
        for table, overlay in (
            (core.nodes_by_label, self._ovl_nodes_by_label),
            (core.dedges_by_label, self._ovl_dedges_by_label),
            (core.uedges_by_label, self._ovl_uedges_by_label),
        ):
            for li, arr in table.items():
                name = names[li]
                if overlay and name in overlay:
                    continue  # the overlay decides (may be emptied)
                if arr:
                    found.add(name)
            if overlay:
                for name, members in overlay.items():
                    if members:
                        found.add(name)
        out = self._memo_all_labels = frozenset(found)
        return out

    # ------------------------------------------------------------------
    # Per-label cardinalities (consumed by the query planner)
    # ------------------------------------------------------------------

    def _label_count(self, table: dict, overlay: dict, label: str) -> int:
        if overlay:
            hit = overlay.get(label)
            if hit is not None:
                return len(hit)
        core = self._core
        li = core.label_index.get(label)
        arr = table.get(li) if li is not None else None
        return len(arr) if arr is not None else 0

    def num_nodes_with_label(self, label: str) -> int:
        return self._label_count(
            self._core.nodes_by_label, self._ovl_nodes_by_label, label
        )

    def num_directed_edges_with_label(self, label: str) -> int:
        return self._label_count(
            self._core.dedges_by_label, self._ovl_dedges_by_label, label
        )

    def num_undirected_edges_with_label(self, label: str) -> int:
        return self._label_count(
            self._core.uedges_by_label, self._ovl_uedges_by_label, label
        )

    def label_cardinalities(self):
        """The snapshot's per-label count summary, built once.

        Returns a :class:`repro.graph.statistics.LabelCardinalities`;
        snapshots are immutable, so the summary is cached for the
        snapshot's lifetime.
        """
        if self._label_cards is None:
            from repro.graph.statistics import LabelCardinalities

            names = self._core.label_names
            counts: list[dict[str, int]] = []
            for table, overlay in (
                (self._core.nodes_by_label, self._ovl_nodes_by_label),
                (self._core.dedges_by_label, self._ovl_dedges_by_label),
                (self._core.uedges_by_label, self._ovl_uedges_by_label),
            ):
                per_label: dict[str, int] = {}
                for li, arr in table.items():
                    name = names[li]
                    if overlay and name in overlay:
                        continue
                    if arr:
                        per_label[name] = len(arr)
                if overlay:
                    for name, members in overlay.items():
                        if members:
                            per_label[name] = len(members)
                counts.append(per_label)
            self._label_cards = LabelCardinalities(
                num_nodes=self.num_nodes,
                num_directed_edges=self.num_directed_edges,
                num_undirected_edges=self.num_undirected_edges,
                node_counts=counts[0],
                directed_edge_counts=counts[1],
                undirected_edge_counts=counts[2],
            )
        return self._label_cards

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------

    def _core_node_dense(self, node: NodeId) -> int:
        core = self._core
        d = core.dense.get(node)
        if (
            d is None
            or d >= core.n_nodes
            or (self._removed and node in self._removed)
        ):
            raise UnknownIdError(f"unknown node {node!r}")
        return d

    def out_edges(self, node: NodeId) -> tuple[DirectedEdgeId, ...]:
        ovl = self._row_out
        if ovl:
            hit = ovl.get(node)
            if hit is not None:
                return hit
        memo = self._memo_out
        hit = memo.get(node)
        if hit is not None:
            return hit
        core = self._core
        d = self._core_node_dense(node)
        elements = core.elements
        col = core.out_edge
        off = core.out_off
        hit = memo[node] = tuple(
            elements[col[i]] for i in range(off[d], off[d + 1])
        )
        return hit

    def in_edges(self, node: NodeId) -> tuple[DirectedEdgeId, ...]:
        ovl = self._row_in
        if ovl:
            hit = ovl.get(node)
            if hit is not None:
                return hit
        memo = self._memo_in
        hit = memo.get(node)
        if hit is not None:
            return hit
        core = self._core
        d = self._core_node_dense(node)
        elements = core.elements
        col = core.in_edge
        off = core.in_off
        hit = memo[node] = tuple(
            elements[col[i]] for i in range(off[d], off[d + 1])
        )
        return hit

    def undirected_edges_at(self, node: NodeId) -> tuple[UndirectedEdgeId, ...]:
        ovl = self._row_und
        if ovl:
            hit = ovl.get(node)
            if hit is not None:
                return hit
        memo = self._memo_und
        hit = memo.get(node)
        if hit is not None:
            return hit
        core = self._core
        d = self._core_node_dense(node)
        elements = core.elements
        col = core.und_edge
        off = core.und_off
        hit = memo[node] = tuple(
            elements[col[i]] for i in range(off[d], off[d + 1])
        )
        return hit

    def num_edges_at(self, node: NodeId) -> int:
        """Total incident edge count via CSR offset subtraction.

        No adjacency tuples are materialised on the fast path, which
        is what the cluster partitioner's LPT balancing wants.
        """
        core = self._core
        d = core.dense.get(node)
        if (
            d is not None
            and d < core.n_nodes
            and not (self._dirty and d in self._dirty)
            and not (self._removed and node in self._removed)
        ):
            return (
                core.out_off[d + 1]
                - core.out_off[d]
                + core.in_off[d + 1]
                - core.in_off[d]
                + core.und_off[d + 1]
                - core.und_off[d]
            )
        return (
            len(self.out_edges(node))
            + len(self.in_edges(node))
            + len(self.undirected_edges_at(node))
        )

    def degree(self, node: NodeId) -> int:
        return self.num_edges_at(node)

    def neighbours(self, node: NodeId) -> frozenset[NodeId]:
        out: set[NodeId] = set()
        for edge in self.out_edges(node):
            out.add(self.target(edge))
        for edge in self.in_edges(node):
            out.add(self.source(edge))
        for edge in self.undirected_edges_at(node):
            out.add(self.other_endpoint(edge, node))
        return frozenset(out)

    def other_endpoint(self, edge: UndirectedEdgeId, node: NodeId) -> NodeId:
        ends = self.endpoints(edge)
        if node not in ends:
            raise GraphError(f"{node!r} is not an endpoint of {edge!r}")
        if len(ends) == 1:
            return node
        (other,) = ends - {node}
        return other

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def _has(self, element, lo: int, hi: int, overlay: dict) -> bool:
        d = self._core.dense.get(element)
        if (
            d is not None
            and lo <= d < hi
            and not (self._removed and element in self._removed)
        ):
            return True
        return bool(overlay) and element in overlay

    def has_node(self, node: NodeId) -> bool:
        return self._has(node, 0, self._core.n_nodes, self._ovl_node_labels)

    def has_edge(self, edge: EdgeId) -> bool:
        core = self._core
        n = core.n_nodes
        total = n + core.n_dedges + core.n_uedges
        return self._has(edge, n, total, self._ovl_dedge_labels) or (
            bool(self._ovl_uedge_labels) and edge in self._ovl_uedge_labels
        )

    def has_directed_edge(self, edge: DirectedEdgeId) -> bool:
        core = self._core
        n = core.n_nodes
        return self._has(edge, n, n + core.n_dedges, self._ovl_dedge_labels)

    def has_undirected_edge(self, edge: UndirectedEdgeId) -> bool:
        core = self._core
        lo = core.n_nodes + core.n_dedges
        return self._has(edge, lo, lo + core.n_uedges, self._ovl_uedge_labels)

    def has_element(self, element: GraphElementId) -> bool:
        core = self._core
        total = core.n_nodes + core.n_dedges + core.n_uedges
        if self._has(element, 0, total, self._ovl_node_labels):
            return True
        return self._has_overlay_element(element)

    def snapshot(self) -> "GraphSnapshot":
        """A snapshot of a snapshot is itself (already immutable)."""
        return self

    def __contains__(self, element: object) -> bool:
        try:
            return self.has_element(element)  # type: ignore[arg-type]
        except TypeError:
            # Unhashable probes are "not an element"; anything else
            # (deadline/limit errors included) must propagate.
            return False

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:
        return (
            f"GraphSnapshot(version={self.version}, nodes={self.num_nodes}, "
            f"directed_edges={self.num_directed_edges}, "
            f"undirected_edges={self.num_undirected_edges})"
        )


def _rebuild_snapshot(
    version: int,
    derived: bool,
    core_payload: tuple,
    overlay_payload,
    overlay_ops: int,
    rows_patched: int,
) -> GraphSnapshot:
    """Unpickle hook: reassemble a snapshot from buffer columns."""
    snap = object.__new__(GraphSnapshot)
    snap.version = version
    snap.derived = derived
    snap._core = SnapshotColumns.from_payload(core_payload)
    if overlay_payload is None:
        snap._removed = _EMPTY_SET
        snap._shadow = _EMPTY_SET
        snap._dirty = _EMPTY_SET
        snap._ovl_node_labels = {}
        snap._ovl_dedge_labels = {}
        snap._ovl_uedge_labels = {}
        snap._ovl_src = {}
        snap._ovl_tgt = {}
        snap._ovl_endpoints = {}
        snap._ovl_props = {}
        snap._row_out = {}
        snap._row_in = {}
        snap._row_und = {}
        snap._ovl_nodes_by_label = {}
        snap._ovl_dedges_by_label = {}
        snap._ovl_uedges_by_label = {}
    else:
        (
            snap._removed,
            snap._shadow,
            snap._dirty,
            snap._ovl_node_labels,
            snap._ovl_dedge_labels,
            snap._ovl_uedge_labels,
            snap._ovl_src,
            snap._ovl_tgt,
            snap._ovl_endpoints,
            snap._ovl_props,
            snap._row_out,
            snap._row_in,
            snap._row_und,
            snap._ovl_nodes_by_label,
            snap._ovl_dedges_by_label,
            snap._ovl_uedges_by_label,
        ) = overlay_payload
    snap._init_memos()
    snap._overlay_ops = overlay_ops
    snap.build_s = 0.0
    snap.csr_rows_patched = rows_patched
    return snap
