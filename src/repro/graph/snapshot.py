"""Immutable, index-heavy snapshots of a property graph.

:class:`GraphSnapshot` is a frozen view of a :class:`~repro.graph.property_graph.PropertyGraph`
taken at a specific :attr:`~GraphSnapshot.version`. It exposes the same
read API the evaluation engine consults (``labels``, ``source``,
``target``, ``endpoints``, ``get_property``, adjacency accessors,
label indexes) but backs every accessor with data materialised once at
construction time:

- adjacency (``out_edges`` / ``in_edges`` / ``undirected_edges_at``)
  returns pre-built sorted **tuples** instead of re-freezing the
  mutable ``set`` indexes on every call;
- the carrier sets (``nodes``, ``directed_edges``,
  ``undirected_edges``) are pre-sorted tuples, so the engine's
  deterministic iteration order comes for free;
- label→elements indexes are inverted once, turning the engine's
  per-call label scans into dictionary lookups.

Snapshots are the unit of sharing in the query-service runtime
(:mod:`repro.service`): they are safe to read from many threads
concurrently and are memoised per graph version by
:meth:`PropertyGraph.snapshot`, so repeated evaluations against an
unchanged graph never rebuild the indexes.

Accessors mirror :class:`PropertyGraph` semantically but return tuples
where the mutable graph returns frozensets; the engine only iterates,
sorts and counts these collections, so the two are interchangeable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Mapping

from repro.errors import GraphError, UnknownIdError
from repro.graph.ids import (
    DirectedEdgeId,
    EdgeId,
    GraphElementId,
    NodeId,
    UndirectedEdgeId,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.property_graph import Constant, PropertyGraph

__all__ = ["GraphSnapshot"]

_EMPTY: tuple = ()


def _invert_labels(table: Mapping) -> dict[str, tuple]:
    by_label: dict[str, list] = {}
    for element, labels in table.items():
        for label in labels:
            by_label.setdefault(label, []).append(element)
    return {label: tuple(sorted(members)) for label, members in by_label.items()}


class GraphSnapshot:
    """A read-only, fully indexed copy of one graph version.

    Construct via :meth:`PropertyGraph.snapshot` (memoised per version)
    rather than directly; direct construction always re-copies.
    """

    __slots__ = (
        "version",
        "_node_labels",
        "_dedge_labels",
        "_uedge_labels",
        "_src",
        "_tgt",
        "_endpoints",
        "_properties",
        "_out",
        "_in",
        "_undirected_at",
        "_nodes",
        "_dedges",
        "_uedges",
        "_nodes_by_label",
        "_dedges_by_label",
        "_uedges_by_label",
        "_label_cards",
    )

    def __init__(self, graph: "PropertyGraph") -> None:
        self.version = graph.version
        self._node_labels = dict(graph._node_labels)
        self._dedge_labels = dict(graph._dedge_labels)
        self._uedge_labels = dict(graph._uedge_labels)
        self._src = dict(graph._src)
        self._tgt = dict(graph._tgt)
        self._endpoints = dict(graph._endpoints)
        self._properties = {
            element: dict(props) for element, props in graph._properties.items()
        }
        self._out = {n: tuple(sorted(s)) for n, s in graph._out.items()}
        self._in = {n: tuple(sorted(s)) for n, s in graph._in.items()}
        self._undirected_at = {
            n: tuple(sorted(s)) for n, s in graph._undirected_at.items()
        }
        self._nodes = tuple(sorted(self._node_labels))
        self._dedges = tuple(sorted(self._dedge_labels))
        self._uedges = tuple(sorted(self._uedge_labels))
        self._nodes_by_label = _invert_labels(self._node_labels)
        self._dedges_by_label = _invert_labels(self._dedge_labels)
        self._uedges_by_label = _invert_labels(self._uedge_labels)
        self._label_cards = None

    # ------------------------------------------------------------------
    # Formal accessors (same contracts as PropertyGraph)
    # ------------------------------------------------------------------

    def labels(self, element: GraphElementId) -> frozenset[str]:
        for table in (self._node_labels, self._dedge_labels, self._uedge_labels):
            if element in table:
                return table[element]
        raise UnknownIdError(f"unknown element {element!r}")

    def source(self, edge: DirectedEdgeId) -> NodeId:
        try:
            return self._src[edge]
        except KeyError:
            raise UnknownIdError(f"unknown directed edge {edge!r}") from None

    def target(self, edge: DirectedEdgeId) -> NodeId:
        try:
            return self._tgt[edge]
        except KeyError:
            raise UnknownIdError(f"unknown directed edge {edge!r}") from None

    def endpoints(self, edge: UndirectedEdgeId) -> frozenset[NodeId]:
        try:
            return self._endpoints[edge]
        except KeyError:
            raise UnknownIdError(f"unknown undirected edge {edge!r}") from None

    def get_property(self, element: GraphElementId, key: str) -> "Constant | None":
        props = self._properties.get(element)
        if props is not None:
            return props.get(key)
        if not self.has_element(element):
            raise UnknownIdError(f"unknown element {element!r}")
        return None

    def has_property(self, element: GraphElementId, key: str) -> bool:
        return self.get_property(element, key) is not None

    def properties(self, element: GraphElementId) -> Mapping[str, "Constant"]:
        if not self.has_element(element):
            raise UnknownIdError(f"unknown element {element!r}")
        return dict(self._properties.get(element, {}))

    # ------------------------------------------------------------------
    # Carrier sets and counting
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> tuple[NodeId, ...]:
        """The node set ``N`` as a sorted tuple."""
        return self._nodes

    @property
    def directed_edges(self) -> tuple[DirectedEdgeId, ...]:
        return self._dedges

    @property
    def undirected_edges(self) -> tuple[UndirectedEdgeId, ...]:
        return self._uedges

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_directed_edges(self) -> int:
        return len(self._dedges)

    @property
    def num_undirected_edges(self) -> int:
        return len(self._uedges)

    @property
    def num_edges(self) -> int:
        return len(self._dedges) + len(self._uedges)

    def iter_nodes(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def iter_directed_edges(self) -> Iterator[DirectedEdgeId]:
        return iter(self._dedges)

    def iter_undirected_edges(self) -> Iterator[UndirectedEdgeId]:
        return iter(self._uedges)

    # ------------------------------------------------------------------
    # Label indexes (O(1) lookups, unlike the mutable graph's scans)
    # ------------------------------------------------------------------

    def nodes_with_label(self, label: str) -> tuple[NodeId, ...]:
        return self._nodes_by_label.get(label, _EMPTY)

    def directed_edges_with_label(self, label: str) -> tuple[DirectedEdgeId, ...]:
        return self._dedges_by_label.get(label, _EMPTY)

    def undirected_edges_with_label(
        self, label: str
    ) -> tuple[UndirectedEdgeId, ...]:
        return self._uedges_by_label.get(label, _EMPTY)

    def all_labels(self) -> frozenset[str]:
        return frozenset(self._nodes_by_label) | frozenset(
            self._dedges_by_label
        ) | frozenset(self._uedges_by_label)

    # ------------------------------------------------------------------
    # Per-label cardinalities (consumed by the query planner)
    # ------------------------------------------------------------------

    def num_nodes_with_label(self, label: str) -> int:
        return len(self._nodes_by_label.get(label, _EMPTY))

    def num_directed_edges_with_label(self, label: str) -> int:
        return len(self._dedges_by_label.get(label, _EMPTY))

    def num_undirected_edges_with_label(self, label: str) -> int:
        return len(self._uedges_by_label.get(label, _EMPTY))

    def label_cardinalities(self):
        """The snapshot's per-label count summary, built once.

        Returns a :class:`repro.graph.statistics.LabelCardinalities`;
        snapshots are immutable, so the summary is cached for the
        snapshot's lifetime.
        """
        if self._label_cards is None:
            from repro.graph.statistics import LabelCardinalities

            self._label_cards = LabelCardinalities(
                num_nodes=len(self._nodes),
                num_directed_edges=len(self._dedges),
                num_undirected_edges=len(self._uedges),
                node_counts={
                    label: len(members)
                    for label, members in self._nodes_by_label.items()
                },
                directed_edge_counts={
                    label: len(members)
                    for label, members in self._dedges_by_label.items()
                },
                undirected_edge_counts={
                    label: len(members)
                    for label, members in self._uedges_by_label.items()
                },
            )
        return self._label_cards

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------

    def out_edges(self, node: NodeId) -> tuple[DirectedEdgeId, ...]:
        try:
            return self._out[node]
        except KeyError:
            raise UnknownIdError(f"unknown node {node!r}") from None

    def in_edges(self, node: NodeId) -> tuple[DirectedEdgeId, ...]:
        try:
            return self._in[node]
        except KeyError:
            raise UnknownIdError(f"unknown node {node!r}") from None

    def undirected_edges_at(self, node: NodeId) -> tuple[UndirectedEdgeId, ...]:
        try:
            return self._undirected_at[node]
        except KeyError:
            raise UnknownIdError(f"unknown node {node!r}") from None

    def degree(self, node: NodeId) -> int:
        return (
            len(self.out_edges(node))
            + len(self._in[node])
            + len(self._undirected_at[node])
        )

    def neighbours(self, node: NodeId) -> frozenset[NodeId]:
        out: set[NodeId] = set()
        for edge in self.out_edges(node):
            out.add(self._tgt[edge])
        for edge in self._in[node]:
            out.add(self._src[edge])
        for edge in self._undirected_at[node]:
            out.add(self.other_endpoint(edge, node))
        return frozenset(out)

    def other_endpoint(self, edge: UndirectedEdgeId, node: NodeId) -> NodeId:
        ends = self.endpoints(edge)
        if node not in ends:
            raise GraphError(f"{node!r} is not an endpoint of {edge!r}")
        if len(ends) == 1:
            return node
        (other,) = ends - {node}
        return other

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def has_node(self, node: NodeId) -> bool:
        return node in self._node_labels

    def has_edge(self, edge: EdgeId) -> bool:
        return edge in self._dedge_labels or edge in self._uedge_labels

    def has_element(self, element: GraphElementId) -> bool:
        return (
            element in self._node_labels
            or element in self._dedge_labels
            or element in self._uedge_labels
        )

    def snapshot(self) -> "GraphSnapshot":
        """A snapshot of a snapshot is itself (already immutable)."""
        return self

    def __contains__(self, element: object) -> bool:
        try:
            return self.has_element(element)  # type: ignore[arg-type]
        except Exception:
            return False

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return (
            f"GraphSnapshot(version={self.version}, nodes={self.num_nodes}, "
            f"directed_edges={self.num_directed_edges}, "
            f"undirected_edges={self.num_undirected_edges})"
        )
