"""Summary statistics over property graphs.

Used by the benchmark harness to report workload characteristics next
to measured results, by tests as a cheap structural fingerprint, and —
via :class:`LabelCardinalities` — by the query planner
(:mod:`repro.gpc.planner`) as the basis for cardinality estimation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.graph.property_graph import PropertyGraph

__all__ = [
    "GraphStatistics",
    "LabelCardinalities",
    "compute_statistics",
    "compute_label_cardinalities",
]


@dataclass(frozen=True)
class GraphStatistics:
    """Structural summary of a property graph."""

    num_nodes: int
    num_directed_edges: int
    num_undirected_edges: int
    num_labels: int
    num_property_keys: int
    max_degree: int
    min_degree: int
    mean_degree: float
    num_directed_self_loops: int
    num_undirected_self_loops: int
    label_histogram: dict[str, int] = field(hash=False, default_factory=dict)

    @property
    def num_edges(self) -> int:
        return self.num_directed_edges + self.num_undirected_edges


@dataclass(frozen=True)
class LabelCardinalities:
    """Per-label node/edge counts of one graph version.

    The query planner's cost model reads these to estimate pattern
    cardinalities and order join sides; snapshots build them once from
    their inverted label indexes
    (:meth:`~repro.graph.snapshot.GraphSnapshot.label_cardinalities`).
    """

    num_nodes: int
    num_directed_edges: int
    num_undirected_edges: int
    node_counts: Mapping[str, int] = field(hash=False, default_factory=dict)
    directed_edge_counts: Mapping[str, int] = field(
        hash=False, default_factory=dict
    )
    undirected_edge_counts: Mapping[str, int] = field(
        hash=False, default_factory=dict
    )

    def nodes_with_label(self, label: str) -> int:
        return self.node_counts.get(label, 0)

    def directed_edges_with_label(self, label: str) -> int:
        return self.directed_edge_counts.get(label, 0)

    def undirected_edges_with_label(self, label: str) -> int:
        return self.undirected_edge_counts.get(label, 0)

    def edges_with_label(self, label: str) -> int:
        return self.directed_edges_with_label(
            label
        ) + self.undirected_edges_with_label(label)

    def patched(
        self,
        *,
        num_nodes: int,
        num_directed_edges: int,
        num_undirected_edges: int,
        node_counts: Mapping[str, int] = (),
        directed_edge_counts: Mapping[str, int] = (),
        undirected_edge_counts: Mapping[str, int] = (),
    ) -> "LabelCardinalities":
        """A copy with new totals and selected per-label counts.

        Used by :meth:`GraphSnapshot.derive` to maintain cardinalities
        incrementally: only the labels a delta chain touched are
        re-counted; zero counts are dropped so patched summaries stay
        structurally identical to freshly built ones.
        """

        def _merge(base: Mapping[str, int], updates) -> dict[str, int]:
            updates = dict(updates)
            if not updates:
                return dict(base)
            merged = dict(base)
            for label, count in updates.items():
                if count:
                    merged[label] = count
                else:
                    merged.pop(label, None)
            return merged

        return LabelCardinalities(
            num_nodes=num_nodes,
            num_directed_edges=num_directed_edges,
            num_undirected_edges=num_undirected_edges,
            node_counts=_merge(self.node_counts, node_counts),
            directed_edge_counts=_merge(
                self.directed_edge_counts, directed_edge_counts
            ),
            undirected_edge_counts=_merge(
                self.undirected_edge_counts, undirected_edge_counts
            ),
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "num_nodes": self.num_nodes,
            "num_directed_edges": self.num_directed_edges,
            "num_undirected_edges": self.num_undirected_edges,
            "node_counts": dict(self.node_counts),
            "directed_edge_counts": dict(self.directed_edge_counts),
            "undirected_edge_counts": dict(self.undirected_edge_counts),
        }


def compute_label_cardinalities(graph) -> LabelCardinalities:
    """Per-label counts for a graph or snapshot.

    Mutable graphs are snapshotted first (memoised per version), so
    repeated calls against an unchanged graph are free.
    """
    snapshot = graph.snapshot() if hasattr(graph, "snapshot") else graph
    return snapshot.label_cardinalities()


def compute_statistics(graph: PropertyGraph) -> GraphStatistics:
    """Compute a :class:`GraphStatistics` summary for ``graph``."""
    degrees = [graph.degree(n) for n in graph.nodes] or [0]
    directed_loops = sum(
        1 for e in graph.directed_edges if graph.source(e) == graph.target(e)
    )
    undirected_loops = sum(
        1 for e in graph.undirected_edges if len(graph.endpoints(e)) == 1
    )
    histogram: dict[str, int] = {}
    for node in graph.nodes:
        for label in graph.labels(node):
            histogram[label] = histogram.get(label, 0) + 1
    for edge in graph.directed_edges | graph.undirected_edges:
        for label in graph.labels(edge):
            histogram[label] = histogram.get(label, 0) + 1
    return GraphStatistics(
        num_nodes=graph.num_nodes,
        num_directed_edges=graph.num_directed_edges,
        num_undirected_edges=graph.num_undirected_edges,
        num_labels=len(graph.all_labels()),
        num_property_keys=len(graph.all_property_keys()),
        max_degree=max(degrees),
        min_degree=min(degrees),
        mean_degree=sum(degrees) / len(degrees),
        num_directed_self_loops=directed_loops,
        num_undirected_self_loops=undirected_loops,
        label_histogram=histogram,
    )
