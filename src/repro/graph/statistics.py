"""Summary statistics over property graphs.

Used by the benchmark harness to report workload characteristics next
to measured results, and by tests as a cheap structural fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.property_graph import PropertyGraph

__all__ = ["GraphStatistics", "compute_statistics"]


@dataclass(frozen=True)
class GraphStatistics:
    """Structural summary of a property graph."""

    num_nodes: int
    num_directed_edges: int
    num_undirected_edges: int
    num_labels: int
    num_property_keys: int
    max_degree: int
    min_degree: int
    mean_degree: float
    num_directed_self_loops: int
    num_undirected_self_loops: int
    label_histogram: dict[str, int] = field(hash=False, default_factory=dict)

    @property
    def num_edges(self) -> int:
        return self.num_directed_edges + self.num_undirected_edges


def compute_statistics(graph: PropertyGraph) -> GraphStatistics:
    """Compute a :class:`GraphStatistics` summary for ``graph``."""
    degrees = [graph.degree(n) for n in graph.nodes] or [0]
    directed_loops = sum(
        1 for e in graph.directed_edges if graph.source(e) == graph.target(e)
    )
    undirected_loops = sum(
        1 for e in graph.undirected_edges if len(graph.endpoints(e)) == 1
    )
    histogram: dict[str, int] = {}
    for node in graph.nodes:
        for label in graph.labels(node):
            histogram[label] = histogram.get(label, 0) + 1
    for edge in graph.directed_edges | graph.undirected_edges:
        for label in graph.labels(edge):
            histogram[label] = histogram.get(label, 0) + 1
    return GraphStatistics(
        num_nodes=graph.num_nodes,
        num_directed_edges=graph.num_directed_edges,
        num_undirected_edges=graph.num_undirected_edges,
        num_labels=len(graph.all_labels()),
        num_property_keys=len(graph.all_property_keys()),
        max_degree=max(degrees),
        min_degree=min(degrees),
        mean_degree=sum(degrees) / len(degrees),
        num_directed_self_loops=directed_loops,
        num_undirected_self_loops=undirected_loops,
        label_histogram=histogram,
    )
