"""Workload graph generators.

These generators produce the property graphs used throughout the test
suite, the examples, and the benchmark harness:

- structured families (chains, cycles, grids, cliques, ladders) with
  predictable answer counts, used to validate evaluation results;
- random multigraphs for differential testing of the Theorem 11
  translations against the baseline evaluators;
- domain graphs (social network, transport network) for the examples;
- the paper's own gadget graphs: the Theorem 13 lower-bound graph and
  the Section 7 restrictor-placement counterexample.

All randomness is seeded; every generator is deterministic given its
arguments.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import WorkloadError
from repro.graph.ids import NodeId
from repro.graph.property_graph import PropertyGraph

__all__ = [
    "chain_graph",
    "cycle_graph",
    "grid_graph",
    "complete_graph",
    "ladder_graph",
    "random_multigraph",
    "random_labeled_digraph",
    "social_network",
    "transport_network",
    "theorem13_gadget",
    "section7_counterexample",
    "two_cliques_bridge",
]


def _node_key(i: int) -> str:
    return f"n{i}"


def chain_graph(
    length: int,
    node_label: str = "N",
    edge_label: str = "e",
    value_key: str | None = None,
) -> PropertyGraph:
    """A directed chain ``n0 -> n1 -> ... -> n_length``.

    The chain has ``length`` edges and ``length + 1`` nodes. When
    ``value_key`` is given, node ``i`` carries ``value_key = i``.
    """
    if length < 0:
        raise WorkloadError("chain length must be non-negative")
    graph = PropertyGraph()
    nodes = []
    for i in range(length + 1):
        props = {value_key: i} if value_key else None
        nodes.append(graph.add_node(_node_key(i), labels={node_label}, properties=props))
    for i in range(length):
        graph.add_edge(f"e{i}", nodes[i], nodes[i + 1], labels={edge_label})
    return graph


def cycle_graph(
    size: int, node_label: str = "N", edge_label: str = "e"
) -> PropertyGraph:
    """A directed cycle of ``size`` nodes (``size >= 1``).

    With ``size = 1`` this is a single node with a directed self-loop —
    the smallest graph on which unrestricted repetition diverges, used
    by the Theorem 10 finiteness experiments.
    """
    if size < 1:
        raise WorkloadError("cycle size must be at least 1")
    graph = PropertyGraph()
    nodes = [graph.add_node(_node_key(i), labels={node_label}) for i in range(size)]
    for i in range(size):
        graph.add_edge(f"e{i}", nodes[i], nodes[(i + 1) % size], labels={edge_label})
    return graph


def grid_graph(
    width: int, height: int, node_label: str = "N", edge_label: str = "e"
) -> PropertyGraph:
    """A ``width x height`` directed grid (edges right and down)."""
    if width < 1 or height < 1:
        raise WorkloadError("grid dimensions must be positive")
    graph = PropertyGraph()
    ids: dict[tuple[int, int], NodeId] = {}
    for y in range(height):
        for x in range(width):
            ids[(x, y)] = graph.add_node(
                f"n{x}_{y}",
                labels={node_label},
                properties={"x": x, "y": y},
            )
    counter = 0
    for y in range(height):
        for x in range(width):
            if x + 1 < width:
                graph.add_edge(
                    f"e{counter}", ids[(x, y)], ids[(x + 1, y)], labels={edge_label}
                )
                counter += 1
            if y + 1 < height:
                graph.add_edge(
                    f"e{counter}", ids[(x, y)], ids[(x, y + 1)], labels={edge_label}
                )
                counter += 1
    return graph


def complete_graph(
    size: int, node_label: str = "N", edge_label: str = "e"
) -> PropertyGraph:
    """A complete directed graph (no self-loops): an edge ``i -> j``
    for every ordered pair ``i != j``."""
    if size < 1:
        raise WorkloadError("complete graph size must be positive")
    graph = PropertyGraph()
    nodes = [graph.add_node(_node_key(i), labels={node_label}) for i in range(size)]
    counter = 0
    for i in range(size):
        for j in range(size):
            if i != j:
                graph.add_edge(f"e{counter}", nodes[i], nodes[j], labels={edge_label})
                counter += 1
    return graph


def ladder_graph(rungs: int, edge_label: str = "e") -> PropertyGraph:
    """A ladder: two parallel chains with cross rungs.

    The number of simple source-to-sink paths grows exponentially with
    ``rungs``, which makes ladders the standard workload for restrictor
    blow-up experiments (Theorem 12/13 shape).
    """
    if rungs < 1:
        raise WorkloadError("ladder needs at least one rung")
    graph = PropertyGraph()
    top = [graph.add_node(f"t{i}", labels={"N"}) for i in range(rungs + 1)]
    bottom = [graph.add_node(f"b{i}", labels={"N"}) for i in range(rungs + 1)]
    counter = 0
    for i in range(rungs):
        for a, b in ((top[i], top[i + 1]), (bottom[i], bottom[i + 1])):
            graph.add_edge(f"e{counter}", a, b, labels={edge_label})
            counter += 1
        graph.add_edge(f"e{counter}", top[i], bottom[i], labels={edge_label})
        counter += 1
        graph.add_edge(f"e{counter}", bottom[i], top[i], labels={edge_label})
        counter += 1
    return graph


def random_multigraph(
    num_nodes: int,
    num_directed: int,
    num_undirected: int = 0,
    node_labels: Sequence[str] = ("A", "B", "C"),
    edge_labels: Sequence[str] = ("a", "b"),
    property_keys: Sequence[str] = ("k",),
    value_range: int = 3,
    seed: int = 0,
) -> PropertyGraph:
    """A random mixed multigraph with labels and integer properties.

    Nodes get one random label from ``node_labels`` plus a random value
    in ``[0, value_range)`` for each key in ``property_keys`` (with
    probability 0.8 per key, so some properties are undefined — this
    exercises the partiality of ``delta``). Self-loops and parallel
    edges are allowed, as the data model requires.
    """
    if num_nodes < 1:
        raise WorkloadError("need at least one node")
    rng = random.Random(seed)
    graph = PropertyGraph()
    nodes = []
    for i in range(num_nodes):
        labels = {rng.choice(node_labels)}
        props = {
            key: rng.randrange(value_range)
            for key in property_keys
            if rng.random() < 0.8
        }
        nodes.append(graph.add_node(_node_key(i), labels=labels, properties=props))
    for i in range(num_directed):
        src = rng.choice(nodes)
        tgt = rng.choice(nodes)
        labels = {rng.choice(edge_labels)}
        props = {
            key: rng.randrange(value_range)
            for key in property_keys
            if rng.random() < 0.5
        }
        graph.add_edge(f"d{i}", src, tgt, labels=labels, properties=props)
    for i in range(num_undirected):
        a = rng.choice(nodes)
        b = rng.choice(nodes)
        labels = {rng.choice(edge_labels)}
        graph.add_undirected_edge(f"u{i}", a, b, labels=labels)
    return graph


def random_labeled_digraph(
    num_nodes: int,
    num_edges: int,
    edge_labels: Sequence[str] = ("a", "b"),
    node_labels: Sequence[str] = (),
    seed: int = 0,
) -> PropertyGraph:
    """A random edge-labeled digraph (the RPQ-literature data model).

    Used for differential testing against the baseline evaluators,
    which are defined over edge-labeled graphs without properties.
    """
    rng = random.Random(seed)
    graph = PropertyGraph()
    nodes = []
    for i in range(num_nodes):
        labels = {rng.choice(node_labels)} if node_labels else set()
        nodes.append(graph.add_node(_node_key(i), labels=labels))
    for i in range(num_edges):
        graph.add_edge(
            f"e{i}",
            rng.choice(nodes),
            rng.choice(nodes),
            labels={rng.choice(edge_labels)},
        )
    return graph


def social_network(
    num_people: int = 20,
    num_cities: int = 4,
    friend_degree: int = 3,
    seed: int = 0,
) -> PropertyGraph:
    """A small social network for the examples.

    - ``Person`` nodes with ``name`` and ``age`` properties;
    - directed ``knows`` edges with a ``since`` year;
    - directed ``lives_in`` edges to ``City`` nodes (with ``name``);
    - undirected ``married`` edges between some pairs.
    """
    if num_people < 2:
        raise WorkloadError("need at least two people")
    rng = random.Random(seed)
    graph = PropertyGraph()
    cities = [
        graph.add_node(
            f"city{i}", labels={"City"}, properties={"name": f"City-{i}"}
        )
        for i in range(num_cities)
    ]
    people = []
    for i in range(num_people):
        people.append(
            graph.add_node(
                f"p{i}",
                labels={"Person"},
                properties={"name": f"Person-{i}", "age": 18 + rng.randrange(60)},
            )
        )
    edge_count = 0
    for person in people:
        graph.add_edge(
            f"lives{edge_count}",
            person,
            rng.choice(cities),
            labels={"lives_in"},
        )
        edge_count += 1
        for _ in range(friend_degree):
            other = rng.choice(people)
            if other != person:
                graph.add_edge(
                    f"knows{edge_count}",
                    person,
                    other,
                    labels={"knows"},
                    properties={"since": 2000 + rng.randrange(24)},
                )
                edge_count += 1
    # Some marriages (undirected).
    for i in range(0, min(num_people - 1, 6), 2):
        graph.add_undirected_edge(
            f"married{i}", people[i], people[i + 1], labels={"married"}
        )
    return graph


def transport_network(lines: int = 3, stops_per_line: int = 5, seed: int = 0) -> PropertyGraph:
    """A transport network: ``Station`` nodes joined by ``link`` edges.

    Each line is a bidirectional chain of stations; lines intersect at
    shared hub stations. Edges carry ``line`` and ``minutes``
    properties; stations carry ``name`` and ``zone``.
    """
    if lines < 1 or stops_per_line < 2:
        raise WorkloadError("need at least one line with two stops")
    rng = random.Random(seed)
    graph = PropertyGraph()
    hub = graph.add_node(
        "hub", labels={"Station", "Hub"}, properties={"name": "Hub", "zone": 1}
    )
    edge_count = 0
    for line in range(lines):
        previous = hub
        for stop in range(stops_per_line):
            station = graph.add_node(
                f"l{line}s{stop}",
                labels={"Station"},
                properties={"name": f"L{line}-S{stop}", "zone": 1 + (stop // 2)},
            )
            minutes = 2 + rng.randrange(6)
            graph.add_edge(
                f"e{edge_count}",
                previous,
                station,
                labels={"link"},
                properties={"line": f"L{line}", "minutes": minutes},
            )
            edge_count += 1
            graph.add_edge(
                f"e{edge_count}",
                station,
                previous,
                labels={"link"},
                properties={"line": f"L{line}", "minutes": minutes},
            )
            edge_count += 1
            previous = station
    return graph


def theorem13_gadget() -> PropertyGraph:
    """The Theorem 13 lower-bound graph.

    Two nodes ``u`` and ``v`` with ``a``-labeled edges ``u -> v`` and
    ``v -> u``, and ``b``-labeled edges ``u -> v`` and ``v -> u``. The
    query ``x = shortest () ->{k..k} ()`` admits ``2^k`` distinct
    witnessing paths from each start node, because at every step both a
    parallel ``a``- and ``b``-edge are available.
    """
    graph = PropertyGraph()
    u = graph.add_node("u", labels={"N"})
    v = graph.add_node("v", labels={"N"})
    graph.add_edge("a_uv", u, v, labels={"a"})
    graph.add_edge("a_vu", v, u, labels={"a"})
    graph.add_edge("b_uv", u, v, labels={"b"})
    graph.add_edge("b_vu", v, u, labels={"b"})
    return graph


def section7_counterexample() -> PropertyGraph:
    """The Section 7 restrictor-placement counterexample graph.

    Nodes labeled ``A``, ``B``, ``C``; a direct ``a``-labeled edge
    ``e2 : A -> B`` and a two-edge detour ``e1 : A -> C``,
    ``e3 : C -> B``. Under ``trail [shortest ...]`` the shortest
    subpattern is forced onto the non-shortest detour ``[e1, e3]``.
    """
    graph = PropertyGraph()
    a = graph.add_node("a", labels={"A"})
    b = graph.add_node("b", labels={"B"})
    c = graph.add_node("c", labels={"C"})
    graph.add_edge("e2", a, b, labels={"a"})
    graph.add_edge("e1", a, c)
    graph.add_edge("e3", c, b)
    return graph


def two_cliques_bridge(clique_size: int = 3) -> PropertyGraph:
    """Two directed cliques joined by a single bridge edge.

    Handy for join/conjunction tests: patterns restricted to one clique
    can only reach the other through the bridge.
    """
    if clique_size < 2:
        raise WorkloadError("clique size must be at least 2")
    graph = PropertyGraph()
    left = [
        graph.add_node(f"l{i}", labels={"L"}) for i in range(clique_size)
    ]
    right = [
        graph.add_node(f"r{i}", labels={"R"}) for i in range(clique_size)
    ]
    counter = 0
    for group in (left, right):
        for x in group:
            for y in group:
                if x != y:
                    graph.add_edge(f"e{counter}", x, y, labels={"c"})
                    counter += 1
    graph.add_edge("bridge", left[0], right[0], labels={"bridge"})
    return graph
