"""The seed tuple/dict snapshot layout, kept as a reference baseline.

:class:`LegacyGraphSnapshot` is the pre-columnar implementation of
:class:`repro.graph.snapshot.GraphSnapshot`: one Python dict or tuple
per index, one object per element. It is retained verbatim for two
jobs:

- **differential testing** — the hypothesis equivalence suite
  (``tests/graph/test_csr_equivalence.py``) asserts the columnar
  snapshot answers byte-identical frozensets against this layout on
  randomized graphs and queries;
- **benchmark baseline** — ``benchmarks/bench_a9_csr.py`` measures the
  CSR core's ``shortest`` speedup and pickle-size reduction against
  it.

Production code must not construct it; use
:meth:`PropertyGraph.snapshot`.

It exposes the read API the evaluation engine consults (``labels``,
``source``, ``target``, ``endpoints``, ``get_property``, adjacency
accessors, label indexes) backed by data materialised once at
construction time:

- adjacency (``out_edges`` / ``in_edges`` / ``undirected_edges_at``)
  returns pre-built sorted **tuples** instead of re-freezing the
  mutable ``set`` indexes on every call;
- the carrier sets (``nodes``, ``directed_edges``,
  ``undirected_edges``) are pre-sorted tuples, so the engine's
  deterministic iteration order comes for free;
- label→elements indexes are inverted once, turning the engine's
  per-call label scans into dictionary lookups.

Snapshots are the unit of sharing in the query-service runtime
(:mod:`repro.service`): they are safe to read from many threads
concurrently and are memoised per graph version by
:meth:`PropertyGraph.snapshot`, so repeated evaluations against an
unchanged graph never rebuild the indexes.

Accessors mirror :class:`PropertyGraph` semantically but return tuples
where the mutable graph returns frozensets; the engine only iterates,
sorts and counts these collections, so the two are interchangeable.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

from repro.errors import GraphError, UnknownIdError
from repro.graph.delta import GraphDelta
from repro.graph.ids import (
    DirectedEdgeId,
    EdgeId,
    GraphElementId,
    NodeId,
    UndirectedEdgeId,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.property_graph import Constant, PropertyGraph

__all__ = ["LegacyGraphSnapshot"]

_EMPTY: tuple = ()


def _invert_labels(table: Mapping) -> dict[str, tuple]:
    by_label: dict[str, list] = {}
    for element, labels in table.items():
        for label in labels:
            by_label.setdefault(label, []).append(element)
    return {label: tuple(sorted(members)) for label, members in by_label.items()}


# ---------------------------------------------------------------------------
# Incremental-derivation helpers
# ---------------------------------------------------------------------------


def _tuple_insert(items: tuple, item) -> tuple:
    """Insert into a sorted tuple (O(log n) compares + one slice copy)."""
    index = bisect_left(items, item)
    return items[:index] + (item,) + items[index:]


def _tuple_discard(items: tuple, item) -> tuple:
    """Remove from a sorted tuple if present (bisect, no re-sort)."""
    index = bisect_left(items, item)
    if index < len(items) and items[index] == item:
        return items[:index] + items[index + 1 :]
    return items


class _NetChange:
    """Net membership change of one sorted collection across a chain.

    Re-adding an element the chain removed (or removing one it added)
    cancels out, so big carrier tuples are patched once with the *net*
    effect instead of once per operation.
    """

    __slots__ = ("added", "removed")

    def __init__(self) -> None:
        self.added: set = set()
        self.removed: set = set()

    def add(self, item) -> None:
        if item in self.removed:
            self.removed.discard(item)
        else:
            self.added.add(item)

    def remove(self, item) -> None:
        if item in self.added:
            self.added.discard(item)
        else:
            self.removed.add(item)

    def __bool__(self) -> bool:
        return bool(self.added or self.removed)

    def patch(self, items: tuple) -> tuple:
        """Apply this net change to a sorted tuple."""
        out = list(items)
        for item in sorted(self.removed, reverse=True):
            index = bisect_left(out, item)
            if index < len(out) and out[index] == item:
                del out[index]
        for item in self.added:
            insort(out, item)
        return tuple(out)


def _net(nets: dict, label: str) -> _NetChange:
    net = nets.get(label)
    if net is None:
        net = nets[label] = _NetChange()
    return net


def _patch_label_index(index: dict, nets: dict) -> None:
    for label, net in nets.items():
        if not net:
            continue
        members = net.patch(index.get(label, _EMPTY))
        if members:
            index[label] = members
        else:
            index.pop(label, None)


class LegacyGraphSnapshot:
    """A read-only, fully indexed copy of one graph version.

    Construct via :meth:`PropertyGraph.snapshot` (memoised per version)
    rather than directly; direct construction always re-copies.
    """

    __slots__ = (
        "version",
        "derived",
        "_node_labels",
        "_dedge_labels",
        "_uedge_labels",
        "_src",
        "_tgt",
        "_endpoints",
        "_properties",
        "_out",
        "_in",
        "_undirected_at",
        "_nodes",
        "_dedges",
        "_uedges",
        "_nodes_by_label",
        "_dedges_by_label",
        "_uedges_by_label",
        "_label_cards",
    )

    def __init__(self, graph: "PropertyGraph") -> None:
        self.version = graph.version
        #: Whether this snapshot was produced by :meth:`derive` rather
        #: than a full rebuild (observability; no behavioural impact).
        self.derived = False
        self._node_labels = dict(graph._node_labels)
        self._dedge_labels = dict(graph._dedge_labels)
        self._uedge_labels = dict(graph._uedge_labels)
        self._src = dict(graph._src)
        self._tgt = dict(graph._tgt)
        self._endpoints = dict(graph._endpoints)
        self._properties = {
            element: dict(props) for element, props in graph._properties.items()
        }
        self._out = {n: tuple(sorted(s)) for n, s in graph._out.items()}
        self._in = {n: tuple(sorted(s)) for n, s in graph._in.items()}
        self._undirected_at = {
            n: tuple(sorted(s)) for n, s in graph._undirected_at.items()
        }
        self._nodes = tuple(sorted(self._node_labels))
        self._dedges = tuple(sorted(self._dedge_labels))
        self._uedges = tuple(sorted(self._uedge_labels))
        self._nodes_by_label = _invert_labels(self._node_labels)
        self._dedges_by_label = _invert_labels(self._dedge_labels)
        self._uedges_by_label = _invert_labels(self._uedge_labels)
        self._label_cards = None

    # ------------------------------------------------------------------
    # Incremental derivation
    # ------------------------------------------------------------------

    @classmethod
    def derive(
        cls, base: "LegacyGraphSnapshot", deltas: Sequence[GraphDelta]
    ) -> "LegacyGraphSnapshot":
        """Patch ``base`` with a contiguous delta chain.

        Returns a snapshot structurally identical to a full rebuild at
        the chain's final version, but built by copying only the
        mappings the chain touches (untouched dicts and tuples are
        shared with ``base``, which is immutable) and patching sorted
        tuples by bisection instead of re-sorting. Cost is
        ``O(|delta| * (log n + slice))`` rather than the rebuild's
        ``O(n log n)`` — the win the mutation path needs.

        The chain must start at ``base.version + 1`` and be
        consecutive; anything else raises :class:`GraphError` (callers
        fall back to a rebuild).
        """
        if not deltas:
            return base
        expected = base.version
        for delta in deltas:
            expected += 1
            if delta.version != expected:
                raise GraphError(
                    f"delta chain is not contiguous from version "
                    f"{base.version}: expected {expected}, "
                    f"got {delta.version}"
                )

        nodes_touched = any(d.nodes_added or d.nodes_removed for d in deltas)
        dedges_touched = any(
            d.dedges_added or d.dedges_removed for d in deltas
        )
        uedges_touched = any(
            d.uedges_added or d.uedges_removed for d in deltas
        )
        props_touched = any(
            d.properties_set
            or d.properties_removed
            or any(
                record.properties
                for group in (
                    d.nodes_added,
                    d.nodes_removed,
                    d.dedges_added,
                    d.dedges_removed,
                    d.uedges_added,
                    d.uedges_removed,
                )
                for record in group
            )
            for d in deltas
        )

        # Copy-on-write: only the mappings this chain mutates are
        # copied; everything else is shared with the (immutable) base.
        node_labels = (
            dict(base._node_labels) if nodes_touched else base._node_labels
        )
        dedge_labels = (
            dict(base._dedge_labels) if dedges_touched else base._dedge_labels
        )
        uedge_labels = (
            dict(base._uedge_labels) if uedges_touched else base._uedge_labels
        )
        src = dict(base._src) if dedges_touched else base._src
        tgt = dict(base._tgt) if dedges_touched else base._tgt
        endpoints = dict(base._endpoints) if uedges_touched else base._endpoints
        properties = (
            dict(base._properties) if props_touched else base._properties
        )
        out_ = (
            dict(base._out)
            if nodes_touched or dedges_touched
            else base._out
        )
        in_ = (
            dict(base._in) if nodes_touched or dedges_touched else base._in
        )
        und_at = (
            dict(base._undirected_at)
            if nodes_touched or uedges_touched
            else base._undirected_at
        )
        nodes_by_label = (
            dict(base._nodes_by_label)
            if nodes_touched
            else base._nodes_by_label
        )
        dedges_by_label = (
            dict(base._dedges_by_label)
            if dedges_touched
            else base._dedges_by_label
        )
        uedges_by_label = (
            dict(base._uedges_by_label)
            if uedges_touched
            else base._uedges_by_label
        )

        node_net = _NetChange()
        dedge_net = _NetChange()
        uedge_net = _NetChange()
        node_label_nets: dict[str, _NetChange] = {}
        dedge_label_nets: dict[str, _NetChange] = {}
        uedge_label_nets: dict[str, _NetChange] = {}

        for delta in deltas:
            # Removals first (edge before node: a cascade's adjacency
            # entries must be empty before its node entry is dropped),
            # then additions (node before edge), then property edits.
            for record in delta.dedges_removed:
                del dedge_labels[record.id]
                del src[record.id]
                del tgt[record.id]
                out_[record.source] = _tuple_discard(
                    out_[record.source], record.id
                )
                in_[record.target] = _tuple_discard(
                    in_[record.target], record.id
                )
                if record.properties:
                    properties.pop(record.id, None)
                dedge_net.remove(record.id)
                for label in record.labels:
                    _net(dedge_label_nets, label).remove(record.id)
            for record in delta.uedges_removed:
                del uedge_labels[record.id]
                del endpoints[record.id]
                for endpoint in record.endpoints:
                    und_at[endpoint] = _tuple_discard(
                        und_at[endpoint], record.id
                    )
                if record.properties:
                    properties.pop(record.id, None)
                uedge_net.remove(record.id)
                for label in record.labels:
                    _net(uedge_label_nets, label).remove(record.id)
            for record in delta.nodes_removed:
                del node_labels[record.id]
                del out_[record.id]
                del in_[record.id]
                del und_at[record.id]
                if record.properties:
                    properties.pop(record.id, None)
                node_net.remove(record.id)
                for label in record.labels:
                    _net(node_label_nets, label).remove(record.id)
            for record in delta.nodes_added:
                node_labels[record.id] = record.labels
                out_[record.id] = _EMPTY
                in_[record.id] = _EMPTY
                und_at[record.id] = _EMPTY
                if record.properties:
                    properties[record.id] = dict(record.properties)
                node_net.add(record.id)
                for label in record.labels:
                    _net(node_label_nets, label).add(record.id)
            for record in delta.dedges_added:
                dedge_labels[record.id] = record.labels
                src[record.id] = record.source
                tgt[record.id] = record.target
                out_[record.source] = _tuple_insert(
                    out_[record.source], record.id
                )
                in_[record.target] = _tuple_insert(
                    in_[record.target], record.id
                )
                if record.properties:
                    properties[record.id] = dict(record.properties)
                dedge_net.add(record.id)
                for label in record.labels:
                    _net(dedge_label_nets, label).add(record.id)
            for record in delta.uedges_added:
                uedge_labels[record.id] = record.labels
                endpoints[record.id] = record.endpoints
                for endpoint in record.endpoints:
                    und_at[endpoint] = _tuple_insert(
                        und_at[endpoint], record.id
                    )
                if record.properties:
                    properties[record.id] = dict(record.properties)
                uedge_net.add(record.id)
                for label in record.labels:
                    _net(uedge_label_nets, label).add(record.id)
            for element, key, value in delta.properties_set:
                # Inner property dicts are shared with the base until
                # first touched, then replaced wholesale.
                entry = dict(properties.get(element, ()))
                entry[key] = value
                properties[element] = entry
            for element, key in delta.properties_removed:
                entry = dict(properties.get(element, ()))
                entry.pop(key, None)
                if entry:
                    properties[element] = entry
                else:
                    properties.pop(element, None)

        nodes = node_net.patch(base._nodes) if node_net else base._nodes
        dedges = dedge_net.patch(base._dedges) if dedge_net else base._dedges
        uedges = uedge_net.patch(base._uedges) if uedge_net else base._uedges
        _patch_label_index(nodes_by_label, node_label_nets)
        _patch_label_index(dedges_by_label, dedge_label_nets)
        _patch_label_index(uedges_by_label, uedge_label_nets)

        label_cards = None
        if base._label_cards is not None:
            label_cards = base._label_cards.patched(
                num_nodes=len(nodes),
                num_directed_edges=len(dedges),
                num_undirected_edges=len(uedges),
                node_counts={
                    label: len(nodes_by_label.get(label, _EMPTY))
                    for label, net in node_label_nets.items()
                    if net
                },
                directed_edge_counts={
                    label: len(dedges_by_label.get(label, _EMPTY))
                    for label, net in dedge_label_nets.items()
                    if net
                },
                undirected_edge_counts={
                    label: len(uedges_by_label.get(label, _EMPTY))
                    for label, net in uedge_label_nets.items()
                    if net
                },
            )

        snap = object.__new__(cls)
        snap.version = expected
        snap.derived = True
        snap._node_labels = node_labels
        snap._dedge_labels = dedge_labels
        snap._uedge_labels = uedge_labels
        snap._src = src
        snap._tgt = tgt
        snap._endpoints = endpoints
        snap._properties = properties
        snap._out = out_
        snap._in = in_
        snap._undirected_at = und_at
        snap._nodes = nodes
        snap._dedges = dedges
        snap._uedges = uedges
        snap._nodes_by_label = nodes_by_label
        snap._dedges_by_label = dedges_by_label
        snap._uedges_by_label = uedges_by_label
        snap._label_cards = label_cards
        return snap

    # ------------------------------------------------------------------
    # Formal accessors (same contracts as PropertyGraph)
    # ------------------------------------------------------------------

    def labels(self, element: GraphElementId) -> frozenset[str]:
        for table in (self._node_labels, self._dedge_labels, self._uedge_labels):
            if element in table:
                return table[element]
        raise UnknownIdError(f"unknown element {element!r}")

    def source(self, edge: DirectedEdgeId) -> NodeId:
        try:
            return self._src[edge]
        except KeyError:
            raise UnknownIdError(f"unknown directed edge {edge!r}") from None

    def target(self, edge: DirectedEdgeId) -> NodeId:
        try:
            return self._tgt[edge]
        except KeyError:
            raise UnknownIdError(f"unknown directed edge {edge!r}") from None

    def endpoints(self, edge: UndirectedEdgeId) -> frozenset[NodeId]:
        try:
            return self._endpoints[edge]
        except KeyError:
            raise UnknownIdError(f"unknown undirected edge {edge!r}") from None

    def get_property(self, element: GraphElementId, key: str) -> "Constant | None":
        props = self._properties.get(element)
        if props is not None:
            return props.get(key)
        if not self.has_element(element):
            raise UnknownIdError(f"unknown element {element!r}")
        return None

    def has_property(self, element: GraphElementId, key: str) -> bool:
        return self.get_property(element, key) is not None

    def properties(self, element: GraphElementId) -> Mapping[str, "Constant"]:
        if not self.has_element(element):
            raise UnknownIdError(f"unknown element {element!r}")
        return dict(self._properties.get(element, {}))

    # ------------------------------------------------------------------
    # Carrier sets and counting
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> tuple[NodeId, ...]:
        """The node set ``N`` as a sorted tuple."""
        return self._nodes

    @property
    def directed_edges(self) -> tuple[DirectedEdgeId, ...]:
        return self._dedges

    @property
    def undirected_edges(self) -> tuple[UndirectedEdgeId, ...]:
        return self._uedges

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_directed_edges(self) -> int:
        return len(self._dedges)

    @property
    def num_undirected_edges(self) -> int:
        return len(self._uedges)

    @property
    def num_edges(self) -> int:
        return len(self._dedges) + len(self._uedges)

    def iter_nodes(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def iter_directed_edges(self) -> Iterator[DirectedEdgeId]:
        return iter(self._dedges)

    def iter_undirected_edges(self) -> Iterator[UndirectedEdgeId]:
        return iter(self._uedges)

    # ------------------------------------------------------------------
    # Label indexes (O(1) lookups, unlike the mutable graph's scans)
    # ------------------------------------------------------------------

    def nodes_with_label(self, label: str) -> tuple[NodeId, ...]:
        return self._nodes_by_label.get(label, _EMPTY)

    def directed_edges_with_label(self, label: str) -> tuple[DirectedEdgeId, ...]:
        return self._dedges_by_label.get(label, _EMPTY)

    def undirected_edges_with_label(
        self, label: str
    ) -> tuple[UndirectedEdgeId, ...]:
        return self._uedges_by_label.get(label, _EMPTY)

    def all_labels(self) -> frozenset[str]:
        return frozenset(self._nodes_by_label) | frozenset(
            self._dedges_by_label
        ) | frozenset(self._uedges_by_label)

    # ------------------------------------------------------------------
    # Per-label cardinalities (consumed by the query planner)
    # ------------------------------------------------------------------

    def num_nodes_with_label(self, label: str) -> int:
        return len(self._nodes_by_label.get(label, _EMPTY))

    def num_directed_edges_with_label(self, label: str) -> int:
        return len(self._dedges_by_label.get(label, _EMPTY))

    def num_undirected_edges_with_label(self, label: str) -> int:
        return len(self._uedges_by_label.get(label, _EMPTY))

    def label_cardinalities(self):
        """The snapshot's per-label count summary, built once.

        Returns a :class:`repro.graph.statistics.LabelCardinalities`;
        snapshots are immutable, so the summary is cached for the
        snapshot's lifetime.
        """
        if self._label_cards is None:
            from repro.graph.statistics import LabelCardinalities

            self._label_cards = LabelCardinalities(
                num_nodes=len(self._nodes),
                num_directed_edges=len(self._dedges),
                num_undirected_edges=len(self._uedges),
                node_counts={
                    label: len(members)
                    for label, members in self._nodes_by_label.items()
                },
                directed_edge_counts={
                    label: len(members)
                    for label, members in self._dedges_by_label.items()
                },
                undirected_edge_counts={
                    label: len(members)
                    for label, members in self._uedges_by_label.items()
                },
            )
        return self._label_cards

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------

    def out_edges(self, node: NodeId) -> tuple[DirectedEdgeId, ...]:
        try:
            return self._out[node]
        except KeyError:
            raise UnknownIdError(f"unknown node {node!r}") from None

    def in_edges(self, node: NodeId) -> tuple[DirectedEdgeId, ...]:
        try:
            return self._in[node]
        except KeyError:
            raise UnknownIdError(f"unknown node {node!r}") from None

    def undirected_edges_at(self, node: NodeId) -> tuple[UndirectedEdgeId, ...]:
        try:
            return self._undirected_at[node]
        except KeyError:
            raise UnknownIdError(f"unknown node {node!r}") from None

    def degree(self, node: NodeId) -> int:
        return (
            len(self.out_edges(node))
            + len(self._in[node])
            + len(self._undirected_at[node])
        )

    def num_edges_at(self, node: NodeId) -> int:
        return self.degree(node)

    def neighbours(self, node: NodeId) -> frozenset[NodeId]:
        out: set[NodeId] = set()
        for edge in self.out_edges(node):
            out.add(self._tgt[edge])
        for edge in self._in[node]:
            out.add(self._src[edge])
        for edge in self._undirected_at[node]:
            out.add(self.other_endpoint(edge, node))
        return frozenset(out)

    def other_endpoint(self, edge: UndirectedEdgeId, node: NodeId) -> NodeId:
        ends = self.endpoints(edge)
        if node not in ends:
            raise GraphError(f"{node!r} is not an endpoint of {edge!r}")
        if len(ends) == 1:
            return node
        (other,) = ends - {node}
        return other

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def has_node(self, node: NodeId) -> bool:
        return node in self._node_labels

    def has_edge(self, edge: EdgeId) -> bool:
        return edge in self._dedge_labels or edge in self._uedge_labels

    def has_directed_edge(self, edge: DirectedEdgeId) -> bool:
        return edge in self._dedge_labels

    def has_undirected_edge(self, edge: UndirectedEdgeId) -> bool:
        return edge in self._uedge_labels

    def has_element(self, element: GraphElementId) -> bool:
        return (
            element in self._node_labels
            or element in self._dedge_labels
            or element in self._uedge_labels
        )

    def snapshot(self) -> "LegacyGraphSnapshot":
        """A snapshot of a snapshot is itself (already immutable)."""
        return self

    def __contains__(self, element: object) -> bool:
        try:
            return self.has_element(element)  # type: ignore[arg-type]
        except TypeError:
            # Unhashable probes are "not an element"; anything else
            # (deadline/limit errors included) must propagate.
            return False

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return (
            f"LegacyGraphSnapshot(version={self.version}, nodes={self.num_nodes}, "
            f"directed_edges={self.num_directed_edges}, "
            f"undirected_edges={self.num_undirected_edges})"
        )
