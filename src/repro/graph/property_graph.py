"""The property-graph data model (Section 2 of the paper).

A property graph is a tuple ``G = <N, Ed, Eu, lambda, endpoints, src,
tgt, delta>`` where

- ``N``, ``Ed``, ``Eu`` are finite, pairwise-disjoint sets of node,
  directed-edge and undirected-edge identifiers;
- ``lambda`` assigns a finite (possibly empty) set of labels to every
  identifier;
- ``src``/``tgt`` give the endpoints of directed edges;
- ``endpoints`` gives the 1- or 2-element endpoint set of undirected
  edges (a singleton encodes an undirected self-loop);
- ``delta`` is a partial function from ``(id, key)`` to constants.

Property graphs are multigraphs (parallel edges allowed), pseudographs
(self-loops allowed) and mixed graphs (directed and undirected edges
coexist). :class:`PropertyGraph` enforces all the structural invariants
at mutation time so that evaluation code can rely on them.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Hashable, Iterable, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.snapshot import GraphSnapshot

from repro.errors import DuplicateIdError, GraphError, UnknownIdError
from repro.graph.delta import (
    DEFAULT_DELTA_LOG_CAPACITY,
    DEFAULT_SNAPSHOT_DELTA_THRESHOLD,
    DirectedEdgeRecord,
    GraphDelta,
    NodeRecord,
    UndirectedEdgeRecord,
    freeze_properties,
)
from repro.graph.ids import (
    DirectedEdgeId,
    EdgeId,
    GraphElementId,
    NodeId,
    UndirectedEdgeId,
)

__all__ = ["PropertyGraph"]

#: Property values are constants from the paper's set ``Const``; we admit
#: any immutable Python scalar.
Constant = Hashable


def _check_constant(value: object) -> None:
    if value is None:
        # ``None`` encodes "delta undefined" in get_property; storing
        # it would create a key that has_property reports as absent.
        raise GraphError(
            "None is not an admissible constant; use remove_property "
            "to make a property undefined"
        )
    if isinstance(value, (list, dict, set, bytearray)):
        raise GraphError(
            f"property values must be immutable constants, got {type(value).__name__}"
        )
    if isinstance(value, tuple):
        # Tuples are hashable only when their items are; a mutable value
        # smuggled inside (e.g. ("a", [1])) would break hashing downstream.
        for item in value:
            _check_constant(item)


class PropertyGraph:
    """A mutable property graph with full adjacency indexing.

    The class exposes the formal model's accessors (``labels``,
    ``source``, ``target``, ``endpoints``, ``get_property``) together
    with the adjacency indexes the evaluation engine needs
    (``out_edges``, ``in_edges``, ``undirected_edges_at``).

    Example
    -------
    >>> g = PropertyGraph()
    >>> alice = g.add_node("alice", labels={"Person"}, properties={"name": "Alice"})
    >>> bob = g.add_node("bob", labels={"Person"})
    >>> e = g.add_edge("e1", alice, bob, labels={"knows"})
    >>> g.source(e) == alice and g.target(e) == bob
    True
    """

    def __init__(
        self,
        *,
        delta_log_capacity: int = DEFAULT_DELTA_LOG_CAPACITY,
        snapshot_delta_threshold: float = DEFAULT_SNAPSHOT_DELTA_THRESHOLD,
    ) -> None:
        self._node_labels: dict[NodeId, frozenset[str]] = {}
        self._dedge_labels: dict[DirectedEdgeId, frozenset[str]] = {}
        self._uedge_labels: dict[UndirectedEdgeId, frozenset[str]] = {}
        self._src: dict[DirectedEdgeId, NodeId] = {}
        self._tgt: dict[DirectedEdgeId, NodeId] = {}
        self._endpoints: dict[UndirectedEdgeId, frozenset[NodeId]] = {}
        self._properties: dict[GraphElementId, dict[str, Constant]] = {}
        # Adjacency indexes.
        self._out: dict[NodeId, set[DirectedEdgeId]] = {}
        self._in: dict[NodeId, set[DirectedEdgeId]] = {}
        self._undirected_at: dict[NodeId, set[UndirectedEdgeId]] = {}
        # Monotonic mutation counter; drives snapshot memoisation and
        # cache invalidation in the service layer. Every bump appends
        # one GraphDelta to the bounded log below.
        self._version = 0
        self._snapshot_cache: "GraphSnapshot | None" = None
        self._snapshot_lock = threading.Lock()
        #: Guards the delta log (and the version/log pair) against
        #: concurrent readers: deltas_since may be called from cache
        #: lookups on other threads while a mutator appends, and a
        #: bounded deque mutated mid-iteration raises RuntimeError.
        self._delta_lock = threading.Lock()
        self._delta_log: deque[GraphDelta] = deque(maxlen=delta_log_capacity)
        #: Fraction of graph size a delta chain may reach before
        #: :meth:`snapshot` rebuilds instead of deriving incrementally.
        self.snapshot_delta_threshold = snapshot_delta_threshold
        #: Observability counters for the two snapshot paths.
        self.snapshot_rebuilds = 0
        self.snapshot_derivations = 0

    # ------------------------------------------------------------------
    # Versioning, deltas and snapshots
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonically increasing counter, bumped by every mutation.

        Two reads of an equal version are guaranteed to observe the
        same graph; the query-service layer keys its result caches on
        it and :meth:`snapshot` memoises per version.
        """
        return self._version

    def _bump(self, delta: GraphDelta) -> None:
        # The previous version's snapshot memo is deliberately *kept*:
        # it is the base the next snapshot() call patches with `delta`.
        with self._delta_lock:
            self._version = delta.version
            self._delta_log.append(delta)

    def deltas_since(self, version: int) -> "tuple[GraphDelta, ...] | None":
        """The contiguous delta chain from ``version`` (exclusive) to
        the current version, or ``None`` when the bounded log no longer
        covers it (or ``version`` is from the future / another graph).

        An empty tuple means ``version`` *is* the current version.
        Thread-safe against concurrent mutators: the version/log pair
        is read atomically (semantic cache lookups call this from
        serving threads while writers bump).
        """
        with self._delta_lock:
            current = self._version
            if version >= current:
                return () if version == current else None
            log = tuple(self._delta_log)
        chain: list[GraphDelta] = []
        for delta in reversed(log):
            if delta.version <= version:
                break
            chain.append(delta)
        chain.reverse()
        if not chain or chain[0].version != version + 1:
            return None  # the log has dropped part of the chain
        if chain[-1].version != current:  # pragma: no cover - defensive
            return None
        return tuple(chain)

    def _delta_budget(self) -> float:
        """Op budget below which incremental derivation is worthwhile.

        Proportional to graph size, with a small absolute floor: a
        handful of operations is always cheaper to patch than a full
        re-index, however small the graph.
        """
        size = self.num_nodes + self.num_edges
        return max(16.0, self.snapshot_delta_threshold * size)

    def snapshot(self) -> "GraphSnapshot":
        """An immutable, fully indexed view of the current version.

        The snapshot is memoised per version. When the graph has moved
        past the memoised version by a *small* delta chain (relative to
        graph size, see :attr:`snapshot_delta_threshold`), the new
        snapshot is **derived** by patching the previous one
        (:meth:`GraphSnapshot.derive`) instead of rebuilding every
        index from scratch; large chains fall back to a full rebuild.
        The whole check-and-build runs under a lock, so concurrent
        callers racing a version bump share one build instead of
        interleaving two.
        """
        with self._snapshot_lock:
            cached = self._snapshot_cache
            if cached is not None and cached.version == self._version:
                return cached
            from repro.graph.snapshot import GraphSnapshot

            snap: "GraphSnapshot | None" = None
            if cached is not None:
                deltas = self.deltas_since(cached.version)
                # The budget covers the *accumulated* overlay, not just
                # this chain: a long run of tiny derives would otherwise
                # grow the copy-on-write overlays (and the set of
                # patched CSR rows the dense fast paths must detour
                # around) without bound. Once the cumulative overlay
                # work crosses the budget, a rebuild re-interns
                # everything into fresh columns.
                if deltas is not None and (
                    getattr(cached, "overlay_ops", 0)
                    + sum(d.size for d in deltas)
                    <= self._delta_budget()
                ):
                    snap = GraphSnapshot.derive(cached, deltas)
                    self.snapshot_derivations += 1
            if snap is None:
                snap = GraphSnapshot(self)
                self.snapshot_rebuilds += 1
            self._snapshot_cache = snap
            return snap

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_node(
        self,
        key: Hashable,
        labels: Iterable[str] = (),
        properties: Mapping[str, Constant] | None = None,
    ) -> NodeId:
        """Add a node and return its :class:`NodeId`.

        ``key`` must be unique among this graph's nodes.
        """
        node = key if isinstance(key, NodeId) else NodeId(key)
        if node in self._node_labels:
            raise DuplicateIdError(f"node {node!r} already exists")
        self._node_labels[node] = frozenset(labels)
        self._out[node] = set()
        self._in[node] = set()
        self._undirected_at[node] = set()
        if properties:
            self._set_properties(node, properties)
        self._bump(
            GraphDelta(
                version=self._version + 1,
                nodes_added=(self._node_record(node),),
            )
        )
        return node

    def add_edge(
        self,
        key: Hashable,
        source: NodeId,
        target: NodeId,
        labels: Iterable[str] = (),
        properties: Mapping[str, Constant] | None = None,
    ) -> DirectedEdgeId:
        """Add a directed edge from ``source`` to ``target``."""
        edge = key if isinstance(key, DirectedEdgeId) else DirectedEdgeId(key)
        if edge in self._dedge_labels:
            raise DuplicateIdError(f"directed edge {edge!r} already exists")
        self._require_node(source)
        self._require_node(target)
        self._dedge_labels[edge] = frozenset(labels)
        self._src[edge] = source
        self._tgt[edge] = target
        self._out[source].add(edge)
        self._in[target].add(edge)
        if properties:
            self._set_properties(edge, properties)
        self._bump(
            GraphDelta(
                version=self._version + 1,
                dedges_added=(self._dedge_record(edge),),
            )
        )
        return edge

    def add_undirected_edge(
        self,
        key: Hashable,
        endpoint_a: NodeId,
        endpoint_b: NodeId,
        labels: Iterable[str] = (),
        properties: Mapping[str, Constant] | None = None,
    ) -> UndirectedEdgeId:
        """Add an undirected edge between the two endpoints.

        Passing the same node twice creates an undirected self-loop,
        whose ``endpoints`` set is a singleton, as in the paper.
        """
        edge = key if isinstance(key, UndirectedEdgeId) else UndirectedEdgeId(key)
        if edge in self._uedge_labels:
            raise DuplicateIdError(f"undirected edge {edge!r} already exists")
        self._require_node(endpoint_a)
        self._require_node(endpoint_b)
        self._uedge_labels[edge] = frozenset(labels)
        self._endpoints[edge] = frozenset({endpoint_a, endpoint_b})
        self._undirected_at[endpoint_a].add(edge)
        self._undirected_at[endpoint_b].add(edge)
        if properties:
            self._set_properties(edge, properties)
        self._bump(
            GraphDelta(
                version=self._version + 1,
                uedges_added=(self._uedge_record(edge),),
            )
        )
        return edge

    def set_property(self, element: GraphElementId, key: str, value: Constant) -> None:
        """Define ``delta(element, key) = value``."""
        self._require_element(element)
        _check_constant(value)
        self._properties.setdefault(element, {})[key] = value
        self._bump(
            GraphDelta(
                version=self._version + 1,
                properties_set=((element, key, value),),
            )
        )

    def remove_property(self, element: GraphElementId, key: str) -> None:
        """Make ``delta(element, key)`` undefined again."""
        self._require_element(element)
        props = self._properties.get(element)
        if not props or key not in props:
            raise UnknownIdError(f"no property {key!r} on {element!r}")
        del props[key]
        if not props:
            del self._properties[element]
        self._bump(
            GraphDelta(
                version=self._version + 1,
                properties_removed=((element, key),),
            )
        )

    def remove_edge(self, edge: DirectedEdgeId) -> None:
        """Remove a directed edge, its properties, and its adjacency
        entries."""
        if edge not in self._dedge_labels:
            raise UnknownIdError(f"unknown directed edge {edge!r}")
        record = self._dedge_record(edge)
        self._out[self._src[edge]].discard(edge)
        self._in[self._tgt[edge]].discard(edge)
        del self._dedge_labels[edge]
        del self._src[edge]
        del self._tgt[edge]
        self._properties.pop(edge, None)
        self._bump(
            GraphDelta(version=self._version + 1, dedges_removed=(record,))
        )

    def remove_undirected_edge(self, edge: UndirectedEdgeId) -> None:
        """Remove an undirected edge, its properties, and its adjacency
        entries."""
        if edge not in self._uedge_labels:
            raise UnknownIdError(f"unknown undirected edge {edge!r}")
        record = self._uedge_record(edge)
        for endpoint in self._endpoints[edge]:
            self._undirected_at[endpoint].discard(edge)
        del self._uedge_labels[edge]
        del self._endpoints[edge]
        self._properties.pop(edge, None)
        self._bump(
            GraphDelta(version=self._version + 1, uedges_removed=(record,))
        )

    def remove_node(self, node: NodeId) -> None:
        """Remove a node together with every incident edge (cascade).

        All adjacency and property indexes are kept consistent; the
        version counter is bumped exactly once for the whole cascade,
        recording one delta that lists the node and every removed edge.
        """
        self._require_node(node)
        node_record = self._node_record(node)
        dedge_records: list[DirectedEdgeRecord] = []
        uedge_records: list[UndirectedEdgeRecord] = []
        for edge in tuple(self._out[node]) + tuple(self._in[node]):
            if edge in self._dedge_labels:  # self-loops appear in both
                dedge_records.append(self._dedge_record(edge))
                self._out[self._src[edge]].discard(edge)
                self._in[self._tgt[edge]].discard(edge)
                del self._dedge_labels[edge]
                del self._src[edge]
                del self._tgt[edge]
                self._properties.pop(edge, None)
        for edge in tuple(self._undirected_at[node]):
            uedge_records.append(self._uedge_record(edge))
            for endpoint in self._endpoints[edge]:
                self._undirected_at[endpoint].discard(edge)
            del self._uedge_labels[edge]
            del self._endpoints[edge]
            self._properties.pop(edge, None)
        del self._node_labels[node]
        del self._out[node]
        del self._in[node]
        del self._undirected_at[node]
        self._properties.pop(node, None)
        self._bump(
            GraphDelta(
                version=self._version + 1,
                nodes_removed=(node_record,),
                dedges_removed=tuple(dedge_records),
                uedges_removed=tuple(uedge_records),
            )
        )

    def _node_record(self, node: NodeId) -> NodeRecord:
        return NodeRecord(
            node,
            self._node_labels[node],
            freeze_properties(self._properties.get(node)),
        )

    def _dedge_record(self, edge: DirectedEdgeId) -> DirectedEdgeRecord:
        return DirectedEdgeRecord(
            edge,
            self._src[edge],
            self._tgt[edge],
            self._dedge_labels[edge],
            freeze_properties(self._properties.get(edge)),
        )

    def _uedge_record(self, edge: UndirectedEdgeId) -> UndirectedEdgeRecord:
        return UndirectedEdgeRecord(
            edge,
            self._endpoints[edge],
            self._uedge_labels[edge],
            freeze_properties(self._properties.get(edge)),
        )

    def _set_properties(
        self, element: GraphElementId, properties: Mapping[str, Constant]
    ) -> None:
        for key, value in properties.items():
            if not isinstance(key, str):
                raise GraphError(f"property keys must be strings, got {key!r}")
            _check_constant(value)
        self._properties[element] = dict(properties)

    # ------------------------------------------------------------------
    # The formal accessors
    # ------------------------------------------------------------------

    def labels(self, element: GraphElementId) -> frozenset[str]:
        """Return ``lambda(element)``, the element's label set."""
        for table in (self._node_labels, self._dedge_labels, self._uedge_labels):
            if element in table:
                return table[element]  # type: ignore[index]
        raise UnknownIdError(f"unknown element {element!r}")

    def source(self, edge: DirectedEdgeId) -> NodeId:
        """Return ``src(edge)`` for a directed edge."""
        try:
            return self._src[edge]
        except KeyError:
            raise UnknownIdError(f"unknown directed edge {edge!r}") from None

    def target(self, edge: DirectedEdgeId) -> NodeId:
        """Return ``tgt(edge)`` for a directed edge."""
        try:
            return self._tgt[edge]
        except KeyError:
            raise UnknownIdError(f"unknown directed edge {edge!r}") from None

    def endpoints(self, edge: UndirectedEdgeId) -> frozenset[NodeId]:
        """Return ``endpoints(edge)`` (1 or 2 nodes) for an undirected edge."""
        try:
            return self._endpoints[edge]
        except KeyError:
            raise UnknownIdError(f"unknown undirected edge {edge!r}") from None

    def get_property(self, element: GraphElementId, key: str) -> Constant | None:
        """Return ``delta(element, key)``, or ``None`` when undefined.

        The paper's ``delta`` is a partial function; ``None`` encodes
        "undefined" (``None`` itself is not an admissible constant).
        """
        self._require_element(element)
        props = self._properties.get(element)
        if props is None:
            return None
        return props.get(key)

    def has_property(self, element: GraphElementId, key: str) -> bool:
        """Return whether ``delta(element, key)`` is defined."""
        return self.get_property(element, key) is not None

    def properties(self, element: GraphElementId) -> Mapping[str, Constant]:
        """Return a read-only snapshot of the element's property map."""
        self._require_element(element)
        return dict(self._properties.get(element, {}))

    # ------------------------------------------------------------------
    # Iteration and counting
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> frozenset[NodeId]:
        """The node set ``N``."""
        return frozenset(self._node_labels)

    @property
    def directed_edges(self) -> frozenset[DirectedEdgeId]:
        """The directed-edge set ``E_d``."""
        return frozenset(self._dedge_labels)

    @property
    def undirected_edges(self) -> frozenset[UndirectedEdgeId]:
        """The undirected-edge set ``E_u``."""
        return frozenset(self._uedge_labels)

    @property
    def num_nodes(self) -> int:
        return len(self._node_labels)

    @property
    def num_directed_edges(self) -> int:
        return len(self._dedge_labels)

    @property
    def num_undirected_edges(self) -> int:
        return len(self._uedge_labels)

    @property
    def num_edges(self) -> int:
        """Total number of edges ``|E_d| + |E_u|``."""
        return self.num_directed_edges + self.num_undirected_edges

    def iter_nodes(self) -> Iterator[NodeId]:
        """Iterate over nodes in a deterministic (sorted) order."""
        return iter(sorted(self._node_labels))

    def iter_directed_edges(self) -> Iterator[DirectedEdgeId]:
        return iter(sorted(self._dedge_labels))

    def iter_undirected_edges(self) -> Iterator[UndirectedEdgeId]:
        return iter(sorted(self._uedge_labels))

    def nodes_with_label(self, label: str) -> frozenset[NodeId]:
        """All nodes ``u`` with ``label in lambda(u)``."""
        return frozenset(
            n for n, labels in self._node_labels.items() if label in labels
        )

    def directed_edges_with_label(self, label: str) -> frozenset[DirectedEdgeId]:
        return frozenset(
            e for e, labels in self._dedge_labels.items() if label in labels
        )

    def undirected_edges_with_label(self, label: str) -> frozenset[UndirectedEdgeId]:
        return frozenset(
            e for e, labels in self._uedge_labels.items() if label in labels
        )

    def all_labels(self) -> frozenset[str]:
        """Every label used anywhere in the graph."""
        out: set[str] = set()
        for table in (self._node_labels, self._dedge_labels, self._uedge_labels):
            for labels in table.values():
                out.update(labels)
        return frozenset(out)

    def all_property_keys(self) -> frozenset[str]:
        """Every property key used anywhere in the graph."""
        out: set[str] = set()
        for props in self._properties.values():
            out.update(props)
        return frozenset(out)

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------

    def out_edges(self, node: NodeId) -> frozenset[DirectedEdgeId]:
        """Directed edges with ``src = node``."""
        self._require_node(node)
        return frozenset(self._out[node])

    def in_edges(self, node: NodeId) -> frozenset[DirectedEdgeId]:
        """Directed edges with ``tgt = node``."""
        self._require_node(node)
        return frozenset(self._in[node])

    def undirected_edges_at(self, node: NodeId) -> frozenset[UndirectedEdgeId]:
        """Undirected edges having ``node`` among their endpoints."""
        self._require_node(node)
        return frozenset(self._undirected_at[node])

    def degree(self, node: NodeId) -> int:
        """Total degree: out + in + undirected incidences."""
        self._require_node(node)
        return (
            len(self._out[node])
            + len(self._in[node])
            + len(self._undirected_at[node])
        )

    def num_edges_at(self, node: NodeId) -> int:
        """Alias of :meth:`degree` (snapshot API parity)."""
        return self.degree(node)

    def neighbours(self, node: NodeId) -> frozenset[NodeId]:
        """Nodes reachable from ``node`` by traversing one edge in any
        legal direction (forward, backward, or undirected)."""
        self._require_node(node)
        out: set[NodeId] = set()
        for edge in self._out[node]:
            out.add(self._tgt[edge])
        for edge in self._in[node]:
            out.add(self._src[edge])
        for edge in self._undirected_at[node]:
            out.add(self.other_endpoint(edge, node))
        return frozenset(out)

    def other_endpoint(self, edge: UndirectedEdgeId, node: NodeId) -> NodeId:
        """The endpoint of ``edge`` other than ``node`` (or ``node`` for
        a self-loop)."""
        ends = self.endpoints(edge)
        if node not in ends:
            raise GraphError(f"{node!r} is not an endpoint of {edge!r}")
        if len(ends) == 1:
            return node
        (other,) = ends - {node}
        return other

    # ------------------------------------------------------------------
    # Membership / checks
    # ------------------------------------------------------------------

    def has_node(self, node: NodeId) -> bool:
        return node in self._node_labels

    def has_edge(self, edge: EdgeId) -> bool:
        return edge in self._dedge_labels or edge in self._uedge_labels

    def has_directed_edge(self, edge: DirectedEdgeId) -> bool:
        return edge in self._dedge_labels

    def has_undirected_edge(self, edge: UndirectedEdgeId) -> bool:
        return edge in self._uedge_labels

    def has_element(self, element: GraphElementId) -> bool:
        return (
            element in self._node_labels
            or element in self._dedge_labels
            or element in self._uedge_labels
        )

    def _require_node(self, node: NodeId) -> None:
        if not isinstance(node, NodeId):
            raise GraphError(f"expected a NodeId, got {node!r}")
        if node not in self._node_labels:
            raise UnknownIdError(f"unknown node {node!r}")

    def _require_element(self, element: GraphElementId) -> None:
        if not self.has_element(element):
            raise UnknownIdError(f"unknown element {element!r}")

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------

    def __contains__(self, element: object) -> bool:
        try:
            return self.has_element(element)  # type: ignore[arg-type]
        except TypeError:
            # Unhashable probes are "not an element", full stop; any
            # other exception (a deadline firing inside a user-defined
            # __hash__, say) is real and must propagate.
            return False

    def __len__(self) -> int:
        """Number of nodes (len over the primary carrier set)."""
        return self.num_nodes

    def __repr__(self) -> str:
        return (
            f"PropertyGraph(nodes={self.num_nodes}, "
            f"directed_edges={self.num_directed_edges}, "
            f"undirected_edges={self.num_undirected_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PropertyGraph):
            return NotImplemented
        return (
            self._node_labels == other._node_labels
            and self._dedge_labels == other._dedge_labels
            and self._uedge_labels == other._uedge_labels
            and self._src == other._src
            and self._tgt == other._tgt
            and self._endpoints == other._endpoints
            and self._properties == other._properties
        )

    def copy(self) -> "PropertyGraph":
        """Return an independent deep copy of this graph.

        The copy starts at version 0 with an empty delta log and no
        snapshot memo (it has no mutation history of its own), but
        inherits the incremental-snapshot tuning knobs.
        """
        new = PropertyGraph(
            delta_log_capacity=self._delta_log.maxlen
            or DEFAULT_DELTA_LOG_CAPACITY,
            snapshot_delta_threshold=self.snapshot_delta_threshold,
        )
        new._node_labels = dict(self._node_labels)
        new._dedge_labels = dict(self._dedge_labels)
        new._uedge_labels = dict(self._uedge_labels)
        new._src = dict(self._src)
        new._tgt = dict(self._tgt)
        new._endpoints = dict(self._endpoints)
        new._properties = {k: dict(v) for k, v in self._properties.items()}
        new._out = {k: set(v) for k, v in self._out.items()}
        new._in = {k: set(v) for k, v in self._in.items()}
        new._undirected_at = {k: set(v) for k, v in self._undirected_at.items()}
        return new
