"""Columnar storage core for graph snapshots.

:class:`SnapshotColumns` is the interned, array-backed heart of
:class:`repro.graph.snapshot.GraphSnapshot`. Instead of one Python
object per adjacency entry, it stores:

- **dense element ids** — every node, directed edge, and undirected
  edge is interned into a dense integer: nodes occupy ``[0, N)``,
  directed edges ``[N, N+M)``, undirected edges ``[N+M, N+M+K)``, each
  class in sorted real-id order. Dense order therefore *is* the
  engine's deterministic iteration order, and the three ranges are
  disjoint by construction (no tagging needed).
- **interned labels** — label strings map to small ints
  (``label_index``), and each element's label *set* is interned once
  (``labelsets`` / ``labelsets_int``) with a per-element index column
  (``labelset_of``), so a label test is two array reads and one small
  frozenset probe.
- **CSR adjacency** — ``out`` / ``in`` / ``undirected`` adjacency as
  compressed-sparse-row triples: an offsets array of length ``N+1``
  plus parallel edge/neighbour columns, all :mod:`array` ``'i'``
  buffers. ``degree`` becomes offset subtraction; a row scan is a
  contiguous int walk with no pointer chasing.
- **per-key property columns** — ``prop_cols[key]`` maps dense id to
  value, one dict per property key instead of one dict per element.
- **label membership columns** — per class, ``label int -> array`` of
  dense ids (ascending, i.e. sorted by real id).

The core is immutable and shared: derived snapshots keep a reference
to their base's columns and layer small overlay dicts on top (see
:meth:`GraphSnapshot.derive`). Pickling ships the raw array buffers
via ``tobytes`` (see :meth:`SnapshotColumns.payload`), which is what
makes :class:`~repro.cluster.backends.ProcessBackend` snapshot
shipping a buffer copy instead of a deep object pickle.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING

from repro.graph.ids import DirectedEdgeId, NodeId, UndirectedEdgeId
from repro.obs.counters import active_counters as _active_counters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.property_graph import PropertyGraph

__all__ = ["SnapshotColumns", "build_columns"]

#: Typecode for every dense-id column. ``'i'`` (4 bytes) halves pickle
#: size versus platform longs; dense ids are bounded by element count.
DENSE_TYPECODE = "i"


class SnapshotColumns:
    """Immutable columnar core shared by a snapshot and its derivatives."""

    __slots__ = (
        "elements",
        "node_ids",
        "dedge_ids",
        "uedge_ids",
        "dense",
        "n_nodes",
        "n_dedges",
        "n_uedges",
        "label_names",
        "label_index",
        "labelsets",
        "labelsets_int",
        "labelset_of",
        "out_off",
        "out_edge",
        "out_tgt",
        "in_off",
        "in_edge",
        "in_src",
        "und_off",
        "und_edge",
        "und_other",
        "src_col",
        "tgt_col",
        "ua_col",
        "ub_col",
        "prop_cols",
        "nodes_by_label",
        "dedges_by_label",
        "uedges_by_label",
        # Lazily built dense-id bitmask indexes (never pickled): one
        # bytes mask over the whole dense id space per (key, const)
        # property equality and per interned label.
        "_prop_masks",
        "_label_masks",
        # Lazily built label-restricted CSR triples (never pickled),
        # keyed by (adjacency kind, label int).
        "_filtered_csr",
    )

    # ------------------------------------------------------------------
    # Bitmask indexes (predicate/label pushdown)
    # ------------------------------------------------------------------

    def prop_mask(self, key: str, const) -> bytes:
        """Dense-id bitmask of ``element.key == const`` over the core.

        Bit ``d`` (``mask[d >> 3] & (1 << (d & 7))``) is set iff dense
        element ``d`` carries property ``key`` with value equal to
        ``const`` in the immutable core columns. Built lazily from the
        property column in one pass and cached forever — the core never
        changes, so derived snapshots share the same mask and only
        patch overlay bits on their own copies.
        """
        cache = self._prop_masks
        cache_key = (key, const)
        mask = cache.get(cache_key)
        if mask is None:
            buf = bytearray((len(self.elements) + 7) >> 3)
            col = self.prop_cols.get(key)
            if col is not None and const is not None:
                for d, value in col.items():
                    if value == const:
                        buf[d >> 3] |= 1 << (d & 7)
            mask = cache[cache_key] = bytes(buf)
            counters = _active_counters()
            if counters is not None:
                counters.masks_built += 1
        return mask

    def label_mask(self, label_int: int) -> bytes:
        """Dense-id bitmask of label membership (all element classes).

        ``label_int`` is an index into :attr:`label_names`; a negative
        value (label not interned — no core element carries it) yields
        an all-zero mask, so compiled probes fail uniformly instead of
        branching on interning misses.
        """
        cache = self._label_masks
        mask = cache.get(label_int)
        if mask is None:
            buf = bytearray((len(self.elements) + 7) >> 3)
            if label_int >= 0:
                for table in (
                    self.nodes_by_label,
                    self.dedges_by_label,
                    self.uedges_by_label,
                ):
                    arr = table.get(label_int)
                    if arr:
                        for d in arr:
                            buf[d >> 3] |= 1 << (d & 7)
            mask = cache[label_int] = bytes(buf)
            counters = _active_counters()
            if counters is not None:
                counters.masks_built += 1
        return mask

    def filtered_csr(self, kind: str, label_int: int) -> tuple:
        """CSR triple restricted to edges carrying ``label_int``.

        ``kind`` selects the adjacency (``"out"``/``"in"``/``"und"``);
        the result is an ``(off, edge, other)`` triple shaped exactly
        like the full CSR but containing only the label's edges, so a
        labelled traversal walks matching edges contiguously instead of
        probing a bitmask per edge. Built lazily in one pass over the
        full CSR against :meth:`label_mask` and cached forever (the
        core is immutable; overlays never reach this index because the
        flat lane requires a pristine snapshot).
        """
        cache = self._filtered_csr
        cache_key = (kind, label_int)
        hit = cache.get(cache_key)
        if hit is None:
            if kind == "out":
                off, edge, other = self.out_off, self.out_edge, self.out_tgt
            elif kind == "in":
                off, edge, other = self.in_off, self.in_edge, self.in_src
            else:
                off, edge, other = self.und_off, self.und_edge, self.und_other
            mask = self.label_mask(label_int)
            new_off = array(DENSE_TYPECODE, [0])
            new_edge = array(DENSE_TYPECODE)
            new_other = array(DENSE_TYPECODE)
            for node in range(self.n_nodes):
                for i in range(off[node], off[node + 1]):
                    e = edge[i]
                    if mask[e >> 3] & (1 << (e & 7)):
                        new_edge.append(e)
                        new_other.append(other[i])
                new_off.append(len(new_edge))
            hit = cache[cache_key] = (new_off, new_edge, new_other)
            counters = _active_counters()
            if counters is not None:
                counters.masks_built += 1
        return hit

    # ------------------------------------------------------------------
    # Buffer pickling
    # ------------------------------------------------------------------

    def payload(self) -> tuple:
        """A compact, picklable encoding of the core.

        Only the *irreducible* columns travel: the bare id keys, the
        label tables, a run-length-coded ``labelset_of``, the edge
        endpoint columns, and the property columns (run-length-coded
        ascending index + value tuple). The CSR triples, the reverse
        CSR, and the per-label membership arrays are all derivable in
        one linear pass, so :meth:`from_payload` recomputes them on
        load instead of paying their bytes on the wire.
        """
        return (
            tuple(e.key for e in self.node_ids),
            tuple(e.key for e in self.dedge_ids),
            tuple(e.key for e in self.uedge_ids),
            self.label_names,
            tuple(tuple(sorted(s)) for s in self.labelsets_int),
            _rle_values(self.labelset_of),
            self.src_col.tobytes(),
            self.tgt_col.tobytes(),
            self.ua_col.tobytes(),
            self.ub_col.tobytes(),
            {
                key: (
                    _rle_ascending(sorted(col)),
                    tuple(col[d] for d in sorted(col)),
                )
                for key, col in self.prop_cols.items()
            },
        )

    @classmethod
    def from_payload(cls, payload: tuple) -> "SnapshotColumns":
        (
            node_keys,
            dedge_keys,
            uedge_keys,
            label_names,
            labelset_ints,
            labelset_of_enc,
            src_bytes,
            tgt_bytes,
            ua_bytes,
            ub_bytes,
            prop_payload,
        ) = payload
        core = object.__new__(cls)
        core.node_ids = tuple(NodeId(k) for k in node_keys)
        core.dedge_ids = tuple(DirectedEdgeId(k) for k in dedge_keys)
        core.uedge_ids = tuple(UndirectedEdgeId(k) for k in uedge_keys)
        elements = core.node_ids + core.dedge_ids + core.uedge_ids
        core.elements = elements
        core.dense = {e: i for i, e in enumerate(elements)}
        n = core.n_nodes = len(node_keys)
        m = core.n_dedges = len(dedge_keys)
        core.n_uedges = len(uedge_keys)
        core.label_names = label_names
        core.label_index = {name: i for i, name in enumerate(label_names)}
        core.labelsets_int = tuple(frozenset(s) for s in labelset_ints)
        core.labelsets = tuple(
            frozenset(label_names[i] for i in s) for s in labelset_ints
        )
        core.labelset_of = _unrle_values(labelset_of_enc)
        core.src_col = _from_bytes(src_bytes)
        core.tgt_col = _from_bytes(tgt_bytes)
        core.ua_col = _from_bytes(ua_bytes)
        core.ub_col = _from_bytes(ub_bytes)
        core.prop_cols = {
            key: dict(zip(_unrle_ascending(idx_enc), values))
            for key, (idx_enc, values) in prop_payload.items()
        }
        core._prop_masks = {}
        core._label_masks = {}
        core._filtered_csr = {}

        # Rebuild CSR + reverse CSR from the endpoint columns. Edges
        # are visited in dense (= sorted-id) order, so each bucketed
        # row comes out sorted by edge id — exactly the builder's
        # layout.
        out_rows: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        in_rows: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        und_rows: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        for j, (s, t) in enumerate(zip(core.src_col, core.tgt_col)):
            edge = n + j
            out_rows[s].append((edge, t))
            in_rows[t].append((edge, s))
        first_uedge = n + m
        for j, (a, b) in enumerate(zip(core.ua_col, core.ub_col)):
            edge = first_uedge + j
            und_rows[a].append((edge, b))
            if b != a:
                und_rows[b].append((edge, a))
        for attr_off, attr_edge, attr_other, rows in (
            ("out_off", "out_edge", "out_tgt", out_rows),
            ("in_off", "in_edge", "in_src", in_rows),
            ("und_off", "und_edge", "und_other", und_rows),
        ):
            off = array(DENSE_TYPECODE, [0])
            edge_col = array(DENSE_TYPECODE)
            other_col = array(DENSE_TYPECODE)
            for row in rows:
                for edge, other in row:
                    edge_col.append(edge)
                    other_col.append(other)
                off.append(len(edge_col))
            setattr(core, attr_off, off)
            setattr(core, attr_edge, edge_col)
            setattr(core, attr_other, other_col)

        # Rebuild per-label membership from the labelset column.
        labelset_of = core.labelset_of
        labelsets_int = core.labelsets_int
        for attr, lo, hi in (
            ("nodes_by_label", 0, n),
            ("dedges_by_label", n, n + m),
            ("uedges_by_label", n + m, len(elements)),
        ):
            by_label: dict[int, array] = {}
            for d in range(lo, hi):
                for li in labelsets_int[labelset_of[d]]:
                    arr = by_label.get(li)
                    if arr is None:
                        arr = by_label[li] = array(DENSE_TYPECODE)
                    arr.append(d)
            setattr(core, attr, by_label)
        return core


def _from_bytes(data: bytes) -> array:
    out = array(DENSE_TYPECODE)
    out.frombytes(data)
    return out


def _rle_values(values) -> tuple[bool, bytes]:
    """Run-length code a sequence of ints as (value, count) pairs.

    Label-set columns are long runs of the same small int (most
    elements of a class share a label set), so this routinely shrinks
    them by orders of magnitude. Falls back to the raw array when runs
    don't win (flag ``False``).
    """
    runs = array(DENSE_TYPECODE)
    current = None
    count = 0
    for value in values:
        if value == current:
            count += 1
        else:
            if count:
                runs.append(current)
                runs.append(count)
            current = value
            count = 1
    if count:
        runs.append(current)
        runs.append(count)
    if len(runs) < len(values):
        return (True, runs.tobytes())
    return (False, array(DENSE_TYPECODE, values).tobytes())


def _unrle_values(encoded: tuple[bool, bytes]) -> array:
    compressed, data = encoded
    if not compressed:
        return _from_bytes(data)
    runs = _from_bytes(data)
    out = array(DENSE_TYPECODE)
    for i in range(0, len(runs), 2):
        value, count = runs[i], runs[i + 1]
        out.extend(array(DENSE_TYPECODE, [value]) * count)
    return out


def _rle_ascending(values) -> tuple[bool, bytes]:
    """Run-length code an ascending int sequence as (start, count)
    runs of consecutive ints.

    Property-index columns are near-contiguous dense-id ranges (every
    Person has an ``age``), so they collapse to a handful of runs."""
    runs = array(DENSE_TYPECODE)
    start = None
    count = 0
    previous = None
    for value in values:
        if previous is not None and value == previous + 1:
            count += 1
        else:
            if count:
                runs.append(start)
                runs.append(count)
            start = value
            count = 1
        previous = value
    if count:
        runs.append(start)
        runs.append(count)
    if len(runs) < len(values):
        return (True, runs.tobytes())
    return (False, array(DENSE_TYPECODE, values).tobytes())


def _unrle_ascending(encoded: tuple[bool, bytes]) -> array:
    compressed, data = encoded
    if not compressed:
        return _from_bytes(data)
    runs = _from_bytes(data)
    out = array(DENSE_TYPECODE)
    for i in range(0, len(runs), 2):
        start, count = runs[i], runs[i + 1]
        out.extend(array(DENSE_TYPECODE, range(start, start + count)))
    return out


def build_columns(graph: "PropertyGraph") -> SnapshotColumns:
    """Intern and columnarise one version of a mutable graph.

    Reads the same internal mappings the legacy snapshot copied
    (``_node_labels``, ``_out``, …) but flattens them into the dense
    layout described in the module docstring.
    """
    core = object.__new__(SnapshotColumns)

    nodes = sorted(graph._node_labels)
    dedges = sorted(graph._dedge_labels)
    uedges = sorted(graph._uedge_labels)
    core.node_ids = tuple(nodes)
    core.dedge_ids = tuple(dedges)
    core.uedge_ids = tuple(uedges)
    elements = core.node_ids + core.dedge_ids + core.uedge_ids
    dense = {e: i for i, e in enumerate(elements)}
    core.elements = elements
    core.dense = dense
    core.n_nodes = len(nodes)
    core.n_dedges = len(dedges)
    core.n_uedges = len(uedges)

    # Label interning: names, then whole label sets (few distinct sets
    # in practice — one table entry per distinct set, one small int per
    # element).
    names = set()
    for table in (graph._node_labels, graph._dedge_labels, graph._uedge_labels):
        for labels in table.values():
            names.update(labels)
    label_names = tuple(sorted(names))
    label_index = {name: i for i, name in enumerate(label_names)}
    core.label_names = label_names
    core.label_index = label_index

    set_index: dict[frozenset[str], int] = {}
    labelsets: list[frozenset[str]] = []
    labelsets_int: list[frozenset[int]] = []
    labelset_of = array(DENSE_TYPECODE)

    def intern_set(labels: frozenset[str]) -> int:
        idx = set_index.get(labels)
        if idx is None:
            idx = set_index[labels] = len(labelsets)
            labelsets.append(labels)
            labelsets_int.append(
                frozenset(label_index[name] for name in labels)
            )
        return idx

    for element in elements:
        for table in (
            graph._node_labels, graph._dedge_labels, graph._uedge_labels
        ):
            labels = table.get(element)
            if labels is not None:
                labelset_of.append(intern_set(labels))
                break
    core.labelsets = tuple(labelsets)
    core.labelsets_int = tuple(labelsets_int)
    core.labelset_of = labelset_of

    # CSR adjacency. Rows are sorted by edge id, matching the legacy
    # tuple layout, so the thin view reproduces iteration order exactly.
    out_off = array(DENSE_TYPECODE, [0])
    out_edge = array(DENSE_TYPECODE)
    out_tgt = array(DENSE_TYPECODE)
    in_off = array(DENSE_TYPECODE, [0])
    in_edge = array(DENSE_TYPECODE)
    in_src = array(DENSE_TYPECODE)
    und_off = array(DENSE_TYPECODE, [0])
    und_edge = array(DENSE_TYPECODE)
    und_other = array(DENSE_TYPECODE)
    src_of, tgt_of = graph._src, graph._tgt
    endpoints_of = graph._endpoints
    for node in nodes:
        for edge in sorted(graph._out[node]):
            out_edge.append(dense[edge])
            out_tgt.append(dense[tgt_of[edge]])
        out_off.append(len(out_edge))
        for edge in sorted(graph._in[node]):
            in_edge.append(dense[edge])
            in_src.append(dense[src_of[edge]])
        in_off.append(len(in_edge))
        for edge in sorted(graph._undirected_at[node]):
            und_edge.append(dense[edge])
            ends = endpoints_of[edge]
            if len(ends) == 1:
                other = node
            else:
                (other,) = ends - {node}
            und_other.append(dense[other])
        und_off.append(len(und_edge))
    core.out_off, core.out_edge, core.out_tgt = out_off, out_edge, out_tgt
    core.in_off, core.in_edge, core.in_src = in_off, in_edge, in_src
    core.und_off, core.und_edge, core.und_other = und_off, und_edge, und_other

    core.src_col = array(DENSE_TYPECODE, (dense[src_of[e]] for e in dedges))
    core.tgt_col = array(DENSE_TYPECODE, (dense[tgt_of[e]] for e in dedges))
    ua_col = array(DENSE_TYPECODE)
    ub_col = array(DENSE_TYPECODE)
    for edge in uedges:
        ends = sorted(dense[n] for n in endpoints_of[edge])
        ua_col.append(ends[0])
        ub_col.append(ends[-1])
    core.ua_col, core.ub_col = ua_col, ub_col

    prop_cols: dict[str, dict[int, object]] = {}
    for element, props in graph._properties.items():
        d = dense[element]
        for key, value in props.items():
            col = prop_cols.get(key)
            if col is None:
                col = prop_cols[key] = {}
            col[d] = value
    core.prop_cols = prop_cols

    # Label membership columns per class; dense ascending order equals
    # sorted-by-real-id order within each class.
    for attr, table, members in (
        ("nodes_by_label", graph._node_labels, nodes),
        ("dedges_by_label", graph._dedge_labels, dedges),
        ("uedges_by_label", graph._uedge_labels, uedges),
    ):
        by_label: dict[int, array] = {}
        for element in members:
            d = dense[element]
            for name in table[element]:
                li = label_index[name]
                arr = by_label.get(li)
                if arr is None:
                    arr = by_label[li] = array(DENSE_TYPECODE)
                arr.append(d)
        setattr(core, attr, by_label)
    core._prop_masks = {}
    core._label_masks = {}
    core._filtered_csr = {}
    return core
