"""Property-graph substrate (Section 2 of the paper).

This package implements the data model the calculus is defined over:

- :mod:`repro.graph.ids` — the disjoint sorts of node / directed-edge /
  undirected-edge identifiers;
- :mod:`repro.graph.property_graph` — the property graph
  ``G = <N, Ed, Eu, lambda, endpoints, src, tgt, delta>``;
- :mod:`repro.graph.snapshot` — immutable per-version adjacency views
  consumed by the engine and the query-service runtime;
- :mod:`repro.graph.builder` — a fluent construction API;
- :mod:`repro.graph.paths` — paths (walks), concatenation, and the
  trail/simple predicates used by restrictors;
- :mod:`repro.graph.generators` — workload graphs used by examples,
  tests, and the benchmark harness;
- :mod:`repro.graph.serialization` — JSON round-tripping;
- :mod:`repro.graph.statistics` — size/degree summaries.
"""

from repro.graph.ids import EdgeId, NodeId, UndirectedEdgeId, DirectedEdgeId
from repro.graph.delta import DeltaSummary, GraphDelta, summarize_deltas
from repro.graph.property_graph import PropertyGraph
from repro.graph.snapshot import GraphSnapshot
from repro.graph.builder import GraphBuilder
from repro.graph.paths import Path, concat_paths, is_simple, is_trail

__all__ = [
    "NodeId",
    "EdgeId",
    "DirectedEdgeId",
    "UndirectedEdgeId",
    "PropertyGraph",
    "GraphSnapshot",
    "GraphDelta",
    "DeltaSummary",
    "summarize_deltas",
    "GraphBuilder",
    "Path",
    "concat_paths",
    "is_simple",
    "is_trail",
]
