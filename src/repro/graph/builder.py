"""Fluent construction API for property graphs.

:class:`GraphBuilder` removes the id bookkeeping from graph
construction: node keys are arbitrary strings, edge keys are generated
automatically, and nodes referenced by edges are created on demand.

Example
-------
>>> g = (GraphBuilder()
...      .node("a", "Person", name="Ann")
...      .node("b", "Person", name="Bob")
...      .edge("a", "b", "knows", since=2020)
...      .undirected("a", "b", "sibling")
...      .build())
>>> g.num_nodes, g.num_edges
(2, 2)
"""

from __future__ import annotations

from typing import Hashable

from repro.errors import GraphError
from repro.graph.ids import DirectedEdgeId, NodeId, UndirectedEdgeId
from repro.graph.property_graph import Constant, PropertyGraph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Incremental, chainable property-graph builder."""

    def __init__(self) -> None:
        self._graph = PropertyGraph()
        self._edge_counter = 0

    # ------------------------------------------------------------------

    def node(
        self,
        key: Hashable,
        *labels: str,
        **properties: Constant,
    ) -> "GraphBuilder":
        """Add (or re-label) a node.

        Adding an existing key with new labels/properties merges them.
        """
        node = NodeId(key)
        if not self._graph.has_node(node):
            self._graph.add_node(node, labels=labels, properties=properties)
            return self
        if labels:
            merged = self._graph.labels(node) | frozenset(labels)
            # PropertyGraph labels are immutable per element; rebuild entry.
            self._graph._node_labels[node] = merged
        for prop_key, value in properties.items():
            self._graph.set_property(node, prop_key, value)
        return self

    def edge(
        self,
        source_key: Hashable,
        target_key: Hashable,
        *labels: str,
        key: Hashable | None = None,
        **properties: Constant,
    ) -> "GraphBuilder":
        """Add a directed edge, creating missing endpoint nodes."""
        source = self._ensure_node(source_key)
        target = self._ensure_node(target_key)
        edge_key = key if key is not None else self._next_edge_key("d")
        self._graph.add_edge(
            DirectedEdgeId(edge_key), source, target, labels=labels, properties=properties
        )
        return self

    def undirected(
        self,
        a_key: Hashable,
        b_key: Hashable,
        *labels: str,
        key: Hashable | None = None,
        **properties: Constant,
    ) -> "GraphBuilder":
        """Add an undirected edge, creating missing endpoint nodes."""
        node_a = self._ensure_node(a_key)
        node_b = self._ensure_node(b_key)
        edge_key = key if key is not None else self._next_edge_key("u")
        self._graph.add_undirected_edge(
            UndirectedEdgeId(edge_key), node_a, node_b, labels=labels, properties=properties
        )
        return self

    def properties(self, key: Hashable, **properties: Constant) -> "GraphBuilder":
        """Set properties on an existing node by key."""
        node = NodeId(key)
        if not self._graph.has_node(node):
            raise GraphError(f"no node with key {key!r}")
        for prop_key, value in properties.items():
            self._graph.set_property(node, prop_key, value)
        return self

    def chain(
        self,
        keys: list[Hashable],
        *labels: str,
        node_labels: tuple[str, ...] = (),
    ) -> "GraphBuilder":
        """Add a directed chain ``k0 -> k1 -> ... -> kn``."""
        if len(keys) < 2:
            raise GraphError("a chain needs at least two node keys")
        for node_key in keys:
            self._ensure_node(node_key, node_labels)
        for a, b in zip(keys, keys[1:]):
            self.edge(a, b, *labels)
        return self

    def build(self) -> PropertyGraph:
        """Return the constructed graph (the builder stays usable)."""
        return self._graph.copy()

    # ------------------------------------------------------------------

    def node_id(self, key: Hashable) -> NodeId:
        """The :class:`NodeId` for a node key (must already exist)."""
        node = NodeId(key)
        if not self._graph.has_node(node):
            raise GraphError(f"no node with key {key!r}")
        return node

    def _ensure_node(
        self, key: Hashable, labels: tuple[str, ...] = ()
    ) -> NodeId:
        node = NodeId(key)
        if not self._graph.has_node(node):
            self._graph.add_node(node, labels=labels)
        return node

    def _next_edge_key(self, prefix: str) -> str:
        self._edge_counter += 1
        return f"_{prefix}{self._edge_counter}"
