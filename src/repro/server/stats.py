"""Serving metrics for the HTTP front end.

:class:`ServerStats` covers what the transport layer adds on top of
the service runtime: request/response counts per endpoint outcome,
admission-control sheds, micro-batch coalescing effectiveness, and
end-to-end request latency (queueing + coalescing + evaluation +
serialisation — a superset of the service-level evaluation latency).

``as_dict()`` composes the owning service's own
:meth:`~repro.service.stats.ServiceStats.as_dict` /
:meth:`~repro.cluster.stats.ClusterStats.as_dict` payload under the
``"service"`` key, so one ``GET /stats`` scrape carries the whole
serving stack.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.service.stats import LatencyRecorder

__all__ = ["ServerStats"]


@dataclass
class ServerStats:
    """Aggregate metrics exposed by :class:`~repro.server.app.GraphServer`.

    ``rejected`` counts requests shed by admission control (429 queue
    overflow and 503 draining) — they never reach the service, so the
    service-level counters stay clean. ``coalesced`` counts ``/query``
    requests that shared an ``evaluate_batch`` dispatch with at least
    one concurrent sibling; ``dispatches`` is the number of batch
    dispatches, so ``queries / dispatches`` is the mean coalesce factor.
    """

    connections: int = 0
    requests: int = 0
    responses: int = 0
    #: Admission-control sheds (429 queue-depth overflow + 503 drain).
    rejected: int = 0
    #: 4xx answers that reached a handler (bad JSON, parse errors, ...).
    client_errors: int = 0
    #: Unexpected 5xx answers.
    server_errors: int = 0
    #: Requests that blew their ``deadline_ms`` budget (504 answers;
    #: also counted in ``server_errors``).
    timeouts: int = 0
    #: ``/query`` requests admitted into the coalescing queue.
    queries: int = 0
    #: ``evaluate_batch`` dispatches issued by the coalescer.
    dispatches: int = 0
    #: Queries that rode a dispatch with >= 2 members.
    coalesced: int = 0
    #: Size of the largest coalesced dispatch so far.
    max_batch: int = 0
    batches: int = 0
    mutations: int = 0
    #: ``/lint`` requests answered (static analysis only, no evaluation).
    lints: int = 0
    draining: bool = False
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def count(self, **deltas: int) -> None:
        """Atomically bump the named integer counters."""
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def record_dispatch(self, size: int) -> None:
        """Account one coalesced ``evaluate_batch`` dispatch of ``size``."""
        with self._lock:
            self.dispatches += 1
            if size > 1:
                self.coalesced += size
            if size > self.max_batch:
                self.max_batch = size

    def as_dict(self, service_stats: "object | None" = None) -> dict[str, object]:
        """A JSON-serialisable flattening of every transport metric.

        Pass the owning service's stats object (anything with an
        ``as_dict()``) to compose its payload under ``"service"`` —
        the shape ``GET /stats`` serves.
        """
        with self._lock:
            payload: dict[str, object] = {
                "connections": self.connections,
                "requests": self.requests,
                "responses": self.responses,
                "rejected": self.rejected,
                "client_errors": self.client_errors,
                "server_errors": self.server_errors,
                "timeouts": self.timeouts,
                "queries": self.queries,
                "dispatches": self.dispatches,
                "coalesced": self.coalesced,
                "max_batch": self.max_batch,
                "batches": self.batches,
                "mutations": self.mutations,
                "lints": self.lints,
                "draining": self.draining,
            }
        payload["latency"] = self.latency.summary()
        if service_stats is not None:
            payload["service"] = service_stats.as_dict()
        return payload
