"""The HTTP serving front end: network transport for the service layer.

This package puts :class:`~repro.service.GraphService` and
:class:`~repro.cluster.ClusterService` on the network — the last hop
of the serving stack. GPC's set semantics does the heavy lifting:
answer sets are frozensets of immutable values computed against
versioned immutable snapshots, so results serialise deterministically
and decode back to the exact set the engine produced
(:mod:`repro.server.wire`), over a stdlib-only asyncio HTTP/1.1
transport (:mod:`repro.server.protocol`).

- :mod:`repro.server.app` — :class:`GraphServer` (admission control,
  micro-batch coalescing, graceful drain) and
  :func:`serve_background` for synchronous callers;
- :mod:`repro.server.wire` — the canonical answer encoding and its
  round-trip decoder;
- :mod:`repro.server.protocol` — minimal HTTP/1.1 over asyncio
  streams;
- :mod:`repro.server.client` — a small blocking client
  (:class:`HttpServiceClient`) used by benchmarks and demos;
- :mod:`repro.server.stats` — :class:`ServerStats` (sheds, coalesce
  factors, request latency) composing the service's own metrics
  payload.
"""

from repro.server.app import GraphServer, ServerHandle, serve_background
from repro.server.client import HttpServiceClient, HttpServiceError, ServerReply
from repro.server.protocol import HttpRequest, ProtocolError
from repro.server.stats import ServerStats
from repro.server.wire import decode_answers, encode_answers

__all__ = [
    "GraphServer",
    "ServerHandle",
    "serve_background",
    "HttpServiceClient",
    "HttpServiceError",
    "ServerReply",
    "HttpRequest",
    "ProtocolError",
    "ServerStats",
    "encode_answers",
    "decode_answers",
]
