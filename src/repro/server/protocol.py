"""A minimal HTTP/1.1 request/response layer over asyncio streams.

Just enough HTTP for the serving front end — stdlib only, no
framework: request-line + header parsing, ``Content-Length`` bodies,
keep-alive connection reuse, and JSON response rendering. Anything the
subset does not speak (chunked uploads, absurd header blocks) is
answered with the right 4xx/5xx instead of being guessed at.

The parser is strict where correctness matters (method/target shape,
Content-Length integrity, header size bounds) and tolerant where the
spec says to be (unknown headers pass through untouched, header names
are case-insensitive).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Mapping
from urllib.parse import parse_qs, unquote, urlsplit

__all__ = [
    "HttpRequest",
    "PreRendered",
    "ProtocolError",
    "read_request",
    "render_response",
    "json_body",
    "STATUS_REASONS",
]

#: Reason phrases for every status the server emits.
STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Upper bound on the request head (request line + headers).
MAX_HEAD_BYTES = 64 * 1024

#: Upper bound on request bodies (batches of queries, mutation lists).
MAX_BODY_BYTES = 16 * 1024 * 1024


class PreRendered:
    """A response body already serialised to bytes.

    Large answer payloads are encoded off the event loop (in a worker
    thread); wrapping the bytes in this marker lets
    :func:`render_response` skip the on-loop ``json.dumps``. A
    non-JSON ``content_type`` (the ``/metrics`` text exposition) rides
    the same marker.
    """

    __slots__ = ("data", "content_type")

    def __init__(self, data: bytes, content_type: str = "application/json"):
        self.data = data
        self.content_type = content_type


class ProtocolError(Exception):
    """A malformed or unsupported request; carries the HTTP status
    the connection handler should answer with before closing."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    #: Decoded query-string parameters (first value per name).
    params: dict[str, str]
    #: Header names lower-cased.
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if connection == "close":
            return False
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return True  # HTTP/1.1 default


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_head_bytes: int = MAX_HEAD_BYTES,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> HttpRequest | None:
    """Parse one request off the stream.

    Returns ``None`` on a clean end-of-stream before any request byte
    (the client closed an idle keep-alive connection). Raises
    :class:`ProtocolError` for anything malformed — the caller answers
    with the carried status and closes.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError(431, "request head too large") from exc
    if len(head) > max_head_bytes:
        raise ProtocolError(431, "request head too large")

    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
        raise ProtocolError(400, "undecodable request head") from exc
    request_line, _, header_block = text.partition("\r\n")
    parts = request_line.split(" ")
    if len(parts) != 3:
        raise ProtocolError(400, f"malformed request line {request_line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise ProtocolError(400, f"unsupported protocol version {version!r}")

    headers: dict[str, str] = {}
    for line in header_block.split("\r\n"):
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError(501, "chunked transfer encoding not supported")

    split = urlsplit(target)
    path = unquote(split.path)
    params = {
        name: values[0]
        for name, values in parse_qs(split.query, keep_blank_values=True).items()
    }

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError as exc:
            raise ProtocolError(
                400, f"bad Content-Length {length_header!r}"
            ) from exc
        if length < 0:
            raise ProtocolError(400, f"bad Content-Length {length_header!r}")
        if length > max_body_bytes:
            raise ProtocolError(413, f"body of {length} bytes exceeds limit")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError(400, "truncated request body") from exc

    return HttpRequest(
        method=method,
        path=path,
        params=params,
        headers=headers,
        body=body,
        version=version,
    )


def json_body(request: HttpRequest) -> Any:
    """The request body as JSON (400 on anything else)."""
    if not request.body:
        raise ProtocolError(400, "expected a JSON body")
    try:
        return json.loads(request.body)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(400, f"invalid JSON body: {exc}") from exc


def render_response(
    status: int,
    payload: Any,
    *,
    keep_alive: bool = True,
    headers: Mapping[str, str] | None = None,
) -> bytes:
    """Serialise one JSON response (status line, headers, body).

    ``payload`` is rendered with sorted keys so equal payloads are
    byte-identical on the wire, matching the deterministic answer
    encoding in :mod:`repro.server.wire` — unless it is already a
    :class:`PreRendered` body serialised off the event loop.
    """
    if isinstance(payload, PreRendered):
        body = payload.data
        content_type = payload.content_type
    else:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        content_type = "application/json"
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body
