"""A minimal blocking HTTP client for the serving front end.

Used by the benchmarks, examples and tests; also the reference for
what a real client must do: POST JSON, check the status, and decode
answer payloads back into ``frozenset[Answer]`` with
:func:`repro.server.wire.decode_answers` — after which results compare
``==`` against a local :meth:`GraphService.evaluate`.

Built on :mod:`http.client` (stdlib), one keep-alive connection per
instance. Not thread-safe: give each client thread its own instance
(connections are cheap; the server multiplexes them all).
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from typing import Any

from repro.errors import WireError
from repro.gpc.answers import Answer
from repro.server import wire

__all__ = ["HttpServiceClient", "ServerReply", "HttpServiceError"]


class HttpServiceError(WireError):
    """A non-2xx reply; carries the HTTP status and decoded body."""

    def __init__(self, status: int, payload: Any):
        message = payload.get("error") if isinstance(payload, dict) else None
        super().__init__(f"HTTP {status}: {message or payload!r}")
        self.status = status
        self.payload = payload


class ServerReply:
    """One decoded reply: status, the JSON payload (or raw text for
    non-JSON bodies like ``/metrics``), and the response headers."""

    __slots__ = ("status", "payload", "headers")

    def __init__(
        self, status: int, payload: Any, headers: dict[str, str] | None = None
    ):
        self.status = status
        self.payload = payload
        self.headers = headers or {}

    def raise_for_status(self) -> "ServerReply":
        if not 200 <= self.status < 300:
            raise HttpServiceError(self.status, self.payload)
        return self


class HttpServiceClient:
    """Talk to one :class:`~repro.server.app.GraphServer`."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._conn = HTTPConnection(host, port, timeout=timeout)

    # -- transport ------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        body: Any | None = None,
        headers: dict[str, str] | None = None,
    ) -> ServerReply:
        """One round trip; GETs reconnect once if the keep-alive
        connection was closed server-side (e.g. after a drain notice).

        Non-idempotent requests are never replayed: once a POST may
        have reached the server (the connection died mid-exchange), a
        blind retry could apply ``/mutate`` ops twice — the caller
        gets the connection error and decides.
        """
        encoded = None if body is None else json.dumps(body).encode("utf-8")
        sent = {"Content-Type": "application/json"} if encoded else {}
        if headers:
            sent.update(headers)
        try:
            self._conn.request(method, path, body=encoded, headers=sent)
            response = self._conn.getresponse()
        except (ConnectionError, BrokenPipeError, OSError):
            self._conn.close()
            if method != "GET":
                raise
            self._conn.connect()
            self._conn.request(method, path, body=encoded, headers=sent)
            response = self._conn.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type", "")
        if not raw:
            payload: Any = None
        elif content_type.startswith("application/json"):
            payload = json.loads(raw)
        else:
            payload = raw.decode("utf-8")
        return ServerReply(
            response.status, payload, dict(response.getheaders())
        )

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "HttpServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- endpoints ------------------------------------------------------

    def query(
        self,
        text: str,
        *,
        use_cache: bool = True,
        deadline_ms: float | None = None,
        trace_id: str | None = None,
    ) -> frozenset[Answer]:
        """``POST /query`` decoded back to the exact answer frozenset.

        ``deadline_ms`` bounds server-side evaluation (a blown budget
        raises :class:`HttpServiceError` with status 504);
        ``trace_id`` forces the request's trace into the server's
        store under that id, retrievable via :meth:`trace`.
        """
        body: dict[str, Any] = {"query": text, "use_cache": use_cache}
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        headers = {"X-Trace-Id": trace_id} if trace_id is not None else None
        reply = self.request(
            "POST", "/query", body, headers=headers
        ).raise_for_status()
        return wire.decode_answers(reply.payload)

    def batch(
        self, queries: list[str], *, use_cache: bool = True
    ) -> "list[frozenset[Answer] | HttpServiceError]":
        """``POST /batch``; failing positions hold the error object."""
        reply = self.request(
            "POST", "/batch", {"queries": queries, "use_cache": use_cache}
        ).raise_for_status()
        results: list = []
        for item in reply.payload["results"]:
            if "error" in item:
                results.append(HttpServiceError(400, item))
            else:
                results.append(wire.decode_answers(item))
        return results

    def mutate(self, ops: list[dict]) -> ServerReply:
        """``POST /mutate`` (ops apply in order; see the server docs)."""
        return self.request("POST", "/mutate", {"ops": ops}).raise_for_status()

    def explain(self, text: str, *, analyze: bool = False) -> str:
        from urllib.parse import quote

        target = f"/explain?query={quote(text)}"
        if analyze:
            target += "&analyze=1"
        reply = self.request("GET", target).raise_for_status()
        return reply.payload["explain"]

    def lint(self, text: str) -> dict:
        """``POST /lint`` — static-analysis diagnostics for one query.

        Returns the raw payload: ``{"diagnostics": [...],
        "provably_empty": bool, "version": int}``. Total — malformed
        queries come back as ``GPC000``/``GPC001`` diagnostics, not
        HTTP errors.
        """
        reply = self.request("POST", "/lint", {"query": text})
        return reply.raise_for_status().payload

    def stats(self) -> dict:
        return self.request("GET", "/stats").raise_for_status().payload

    def trace(self, trace_id: str | None = None) -> dict:
        """``GET /trace`` — one span tree by id, or the recent/slow
        ring buffers plus store counters."""
        target = "/trace" if trace_id is None else f"/trace?id={trace_id}"
        return self.request("GET", target).raise_for_status().payload

    def metrics(self) -> str:
        """``GET /metrics`` — the Prometheus text exposition body."""
        return self.request("GET", "/metrics").raise_for_status().payload

    def insights(
        self, *, sort: str | None = None, limit: int | None = None
    ) -> dict:
        """``GET /insights`` — top-K fingerprint-aggregated workload
        profiles (``sort`` ∈ total_time / calls / misestimate / errors)
        plus registry counters."""
        from urllib.parse import quote

        params = []
        if sort is not None:
            params.append(f"sort={quote(str(sort))}")
        if limit is not None:
            params.append(f"limit={limit}")
        target = "/insights" + ("?" + "&".join(params) if params else "")
        return self.request("GET", target).raise_for_status().payload

    def healthz(self) -> dict:
        return self.request("GET", "/healthz").raise_for_status().payload
