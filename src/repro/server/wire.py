"""Deterministic JSON wire encoding for GPC answers.

GPC's set semantics is what makes its results transportable: an answer
set is a frozenset of immutable :class:`~repro.gpc.answers.Answer`
values (path tuples plus assignments), so serialising it is a pure
function of the set — no cursors, no iteration state, no server-side
affinity. This module fixes one canonical JSON form for that function:

- **ids** are single-key tagged objects — ``{"n": key}`` (node),
  ``{"d": key}`` (directed edge), ``{"u": key}`` (undirected edge) —
  whose key is a JSON scalar or a tagged tuple ``{"t": [...]}``, so
  non-string keys round-trip exactly;
- **paths** are ``{"p": [id, id, ...]}`` with the alternating
  node/edge element sequence (re-validated on decode);
- **values** add ``{"nothing": true}`` and groups
  ``{"g": [[path, value], ...]}``;
- **answers** are ``{"paths": [...], "mu": {var: value}}``;
- **answer sets** serialise in :func:`~repro.gpc.answers.sort_answers`
  order, so equal frozensets produce byte-identical payloads (cacheable
  and diffable) regardless of hash seeds or worker scheduling.

:func:`decode_answers` is the exact inverse of :func:`encode_answers`:
``decode_answers(encode_answers(s)) == s`` for every answer set the
engine can produce.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import WireError
from repro.gpc.answers import Answer, sort_answers
from repro.gpc.assignments import Assignment
from repro.gpc.values import GroupValue, Nothing, NothingType, Value
from repro.graph.ids import (
    DirectedEdgeId,
    GraphElementId,
    NodeId,
    UndirectedEdgeId,
)
from repro.graph.paths import Path

__all__ = [
    "FORMAT",
    "encode_id",
    "decode_id",
    "encode_value",
    "decode_value",
    "encode_answer",
    "decode_answer",
    "encode_answers",
    "decode_answers",
]

#: Format marker carried by full answer-set payloads.
FORMAT = "repro/answers@1"

_ID_TAGS = {NodeId: "n", DirectedEdgeId: "d", UndirectedEdgeId: "u"}
_TAG_IDS = {tag: sort for sort, tag in _ID_TAGS.items()}


# ---------------------------------------------------------------------------
# Id keys: JSON scalars pass through, tuples are tagged
# ---------------------------------------------------------------------------


def _encode_key(key: Any) -> Any:
    if key is None or isinstance(key, (str, bool, int, float)):
        return key
    if isinstance(key, tuple):
        return {"t": [_encode_key(item) for item in key]}
    raise WireError(f"cannot encode id key {key!r} ({type(key).__name__})")


def _decode_key(data: Any) -> Any:
    if data is None or isinstance(data, (str, bool, int, float)):
        return data
    if isinstance(data, dict) and set(data) == {"t"}:
        items = data["t"]
        if not isinstance(items, list):
            raise WireError(f"tagged tuple key must hold a list: {data!r}")
        return tuple(_decode_key(item) for item in items)
    raise WireError(f"cannot decode id key {data!r}")


# ---------------------------------------------------------------------------
# Ids, paths, values
# ---------------------------------------------------------------------------


def encode_id(element: GraphElementId) -> dict[str, Any]:
    """One graph element id as a single-key tagged object."""
    tag = _ID_TAGS.get(type(element))
    if tag is None:
        raise WireError(f"not a graph element id: {element!r}")
    return {tag: _encode_key(element.key)}


def decode_id(data: Any) -> GraphElementId:
    if not (isinstance(data, dict) and len(data) == 1):
        raise WireError(f"malformed id: {data!r}")
    tag, key = next(iter(data.items()))
    sort = _TAG_IDS.get(tag)
    if sort is None:
        raise WireError(f"unknown id tag {tag!r} in {data!r}")
    return sort(_decode_key(key))


def _encode_path(path: Path) -> dict[str, Any]:
    return {"p": [encode_id(element) for element in path.elements]}


def _decode_path(data: Any) -> Path:
    if not (isinstance(data, dict) and set(data) == {"p"}):
        raise WireError(f"malformed path: {data!r}")
    elements = data["p"]
    if not isinstance(elements, list):
        raise WireError(f"path elements must be a list: {data!r}")
    try:
        return Path([decode_id(element) for element in elements])
    except WireError:
        raise
    except Exception as exc:  # broken alternation, empty path, ...
        raise WireError(f"invalid path {data!r}: {exc}") from exc


def encode_value(value: Value) -> Any:
    """One semantic value (Definition 7) in canonical wire form."""
    if isinstance(value, (NodeId, DirectedEdgeId, UndirectedEdgeId)):
        return encode_id(value)
    if isinstance(value, Path):
        return _encode_path(value)
    if isinstance(value, NothingType):
        return {"nothing": True}
    if isinstance(value, GroupValue):
        return {
            "g": [
                [_encode_path(path), encode_value(inner)]
                for path, inner in value.entries
            ]
        }
    raise WireError(f"cannot encode value {value!r} ({type(value).__name__})")


def decode_value(data: Any) -> Value:
    if not (isinstance(data, dict) and data):
        raise WireError(f"malformed value: {data!r}")
    if "nothing" in data:
        return Nothing
    if "p" in data:
        return _decode_path(data)
    if "g" in data:
        entries = data["g"]
        if not isinstance(entries, list):
            raise WireError(f"group entries must be a list: {data!r}")
        decoded = []
        for entry in entries:
            if not (isinstance(entry, list) and len(entry) == 2):
                raise WireError(f"group entry must be a pair: {entry!r}")
            decoded.append((_decode_path(entry[0]), decode_value(entry[1])))
        return GroupValue(tuple(decoded))
    return decode_id(data)


# ---------------------------------------------------------------------------
# Answers and answer sets
# ---------------------------------------------------------------------------


def encode_answer(answer: Answer) -> dict[str, Any]:
    """One ``(p-bar, mu)`` pair in canonical wire form."""
    return {
        "paths": [_encode_path(path) for path in answer.paths],
        "mu": {
            variable: encode_value(value)
            for variable, value in sorted(answer.assignment.items())
        },
    }


def decode_answer(data: Any) -> Answer:
    if not (isinstance(data, dict) and "paths" in data and "mu" in data):
        raise WireError(f"malformed answer: {data!r}")
    paths = data["paths"]
    mu = data["mu"]
    if not isinstance(paths, list) or not isinstance(mu, dict):
        raise WireError(f"malformed answer: {data!r}")
    try:
        return Answer(
            tuple(_decode_path(path) for path in paths),
            Assignment(
                {variable: decode_value(value) for variable, value in mu.items()}
            ),
        )
    except WireError:
        raise
    except Exception as exc:  # e.g. zero paths
        raise WireError(f"invalid answer {data!r}: {exc}") from exc


def encode_answers(answers: Iterable[Answer]) -> dict[str, Any]:
    """A whole answer set, deterministically ordered.

    Equal frozensets encode to identical payloads: answers are listed
    in :func:`~repro.gpc.answers.sort_answers` order (radix order on
    the path tuple, then assignment repr), which is independent of set
    iteration order.
    """
    ordered = sort_answers(answers)
    return {
        "format": FORMAT,
        "count": len(ordered),
        "answers": [encode_answer(answer) for answer in ordered],
    }


def decode_answers(data: Any) -> frozenset[Answer]:
    """Inverse of :func:`encode_answers` (format-checked)."""
    if not isinstance(data, dict):
        raise WireError(f"malformed answer set: {data!r}")
    if data.get("format") != FORMAT:
        raise WireError(f"unsupported answer format {data.get('format')!r}")
    answers = data.get("answers")
    if not isinstance(answers, list):
        raise WireError(f"answer set must hold a list: {data!r}")
    return frozenset(decode_answer(answer) for answer in answers)
