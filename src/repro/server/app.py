"""The asyncio HTTP serving front end.

:class:`GraphServer` wraps a :class:`~repro.service.GraphService` or
:class:`~repro.cluster.ClusterService` behind a JSON-over-HTTP API
(stdlib only — :func:`asyncio.start_server` plus the minimal HTTP/1.1
layer in :mod:`repro.server.protocol`):

==============  ======================================================
``POST /query``   evaluate one query (coalesced, see below)
``POST /batch``   evaluate a list of queries in one service batch
``POST /mutate``  apply a list of graph mutations in order
``GET /explain``  the planner's strategy summary (``?query=...``,
                  add ``&analyze=1`` to run it and report engine work)
``GET /lint``     static-analysis diagnostics (``?query=...``; also
                  ``POST`` with ``{"query": ...}``) — no evaluation
``GET /stats``    transport + service metrics (one composed payload)
``GET /trace``    recorded span trees (``?id=<trace-id>`` for one)
``GET /metrics``  the same counters in Prometheus text exposition
``GET /healthz``  liveness, version, drain state
==============  ======================================================

Three behaviours make it a *server* rather than plumbing:

- **admission control** — a bounded in-flight semaphore caps
  concurrent evaluations and a queue-depth limit sheds overload with
  ``429`` (``503`` while draining); sheds are counted in
  :class:`~repro.server.stats.ServerStats` and never touch the
  service;
- **micro-batch coalescing** — concurrent ``POST /query`` arrivals
  are folded into one :meth:`evaluate_batch` call. The coalescer is a
  group-commit loop: it waits ``coalesce_window_s`` after the first
  arrival (and naturally accumulates arrivals while a previous batch
  is evaluating), then dispatches up to ``coalesce_max`` queries at
  once — one thread hop and one snapshot pin per batch instead of per
  request;
- **graceful drain** — :meth:`drain` stops accepting connections,
  answers new requests with ``503``, lets every admitted request
  finish (including queued coalesced queries), then closes the
  underlying service.

Two observability behaviours ride every request:

- **end-to-end tracing** — each request runs under a root span from
  the server's :class:`~repro.obs.trace.Tracer`. A client-supplied
  ``X-Trace-Id`` header is honoured (and forces the trace into the
  store past sampling); the assigned id is echoed back in the
  response's ``X-Trace-Id`` header and resolvable via ``GET
  /trace?id=...``. Coalesced queries carry their request context into
  the evaluation thread (``contextvars.copy_context``), so service and
  engine spans nest under the right root even when many requests share
  one ``evaluate_batch`` dispatch.
- **deadlines** — ``POST /query`` accepts ``"deadline_ms"``; the
  budget rides the request context into the engine's deepening loops,
  and a blown deadline answers ``504`` with the partial span tree
  recorded in the trace store (5xx traces bypass sampling).

Answers travel in the canonical :mod:`repro.server.wire` encoding, so
an HTTP client can reconstruct the exact ``frozenset[Answer]`` the
service computed.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import DeadlineExceededError, GPCError
from repro.gpc import analysis
from repro.obs import metrics as obs_metrics
from repro.obs import NULL_SPAN, Tracer, TraceStore, current_span, deadline_scope, span
from repro.server import wire
from repro.server.protocol import (
    HttpRequest,
    PreRendered,
    ProtocolError,
    json_body,
    read_request,
    render_response,
)
from repro.server.stats import ServerStats
from repro.graph.ids import DirectedEdgeId, NodeId, UndirectedEdgeId

__all__ = ["GraphServer", "ServerHandle", "serve_background"]


#: Sentinel shutting the coalescer loop down after the queue drains.
_STOP = object()

#: Answer sets up to this size are JSON-encoded inline on the event
#: loop (cheaper than a thread hop); larger ones serialise in a
#: worker thread so one fat response never stalls other connections.
ENCODE_INLINE_LIMIT = 64


#: Content type of the Prometheus text exposition format.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: How many fingerprints get per-fingerprint labeled series in
#: ``GET /metrics`` (bounds the exposition size; the full registry
#: stays available as JSON under ``GET /insights``).
INSIGHTS_METRICS_TOPK = 10

#: Default number of fingerprints returned by ``GET /insights``.
INSIGHTS_DEFAULT_LIMIT = 20


@dataclass
class _Pending:
    """One admitted ``/query`` request waiting in the coalescing queue.

    ``ctx`` snapshots the request's :mod:`contextvars` context (root
    span + deadline) so the evaluation thread the coalescer dispatches
    to inherits both; ``root`` is the request's root span for the
    coalesce-wait/dispatch child spans the coalescer adds on its
    behalf; ``enqueued`` timestamps admission into the queue.
    """

    query: str
    use_cache: bool
    future: asyncio.Future
    ctx: contextvars.Context = field(default_factory=contextvars.copy_context)
    root: Any = NULL_SPAN
    enqueued: float = 0.0


class GraphServer:
    """Serve a graph service over HTTP with admission control,
    micro-batch coalescing and graceful drain.

    ``service`` is anything with the ``GraphService`` surface —
    ``evaluate_batch`` / ``explain`` / ``stats`` / ``version`` / the
    mutation delegations / ``close`` — so :class:`ClusterService`
    plugs in unchanged.

    Example
    -------
    >>> from repro.graph.generators import social_network
    >>> from repro.server import serve_background, HttpServiceClient
    >>> from repro.service import GraphService
    >>> with serve_background(GraphService(social_network(8))) as handle:
    ...     client = HttpServiceClient(*handle.address)
    ...     answers = client.query("TRAIL (x:Person) -[:knows]-> (y:Person)")
    ...     client.close()
    >>> isinstance(answers, frozenset)
    True
    """

    #: Endpoints and the methods they answer to (else 405).
    ROUTES = {
        "/query": ("POST",),
        "/batch": ("POST",),
        "/mutate": ("POST",),
        "/explain": ("GET",),
        "/lint": ("GET", "POST"),
        "/stats": ("GET",),
        "/trace": ("GET",),
        "/metrics": ("GET",),
        "/insights": ("GET",),
        "/healthz": ("GET",),
    }

    def __init__(
        self,
        service,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_in_flight: int = 8,
        max_queue_depth: int = 64,
        coalesce_window_s: float = 0.001,
        coalesce_max: int = 16,
        close_service: bool = True,
        tracing: bool = True,
        trace_store: TraceStore | None = None,
        trace_capacity: int = 256,
        trace_sample_every: int = 1,
        slow_threshold_s: float = 0.5,
        log_requests: bool = False,
    ):
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        if max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0, got {max_queue_depth}"
            )
        if coalesce_max < 1:
            raise ValueError(f"coalesce_max must be >= 1, got {coalesce_max}")
        self.service = service
        self.stats = ServerStats()
        self.tracer = Tracer(
            trace_store
            if trace_store is not None
            else TraceStore(
                trace_capacity,
                slow_threshold_s=slow_threshold_s,
                sample_every=trace_sample_every,
            ),
            enabled=tracing,
        )
        self.log_requests = log_requests
        self._access_log = logging.getLogger("repro.server.access")
        self.max_in_flight = max_in_flight
        self.max_queue_depth = max_queue_depth
        self.coalesce_window_s = coalesce_window_s
        self.coalesce_max = coalesce_max
        self._host = host
        self._port = port
        self._close_service = close_service
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.Queue | None = None
        self._semaphore: asyncio.Semaphore | None = None
        self._coalescer: asyncio.Task | None = None
        self._dispatch_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._active_requests = 0
        self._all_idle: asyncio.Event | None = None
        self._waiting_slots = 0
        self._draining = False
        self._drained = False
        self.address: tuple[str, int] | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._semaphore = asyncio.Semaphore(self.max_in_flight)
        self._all_idle = asyncio.Event()
        self._all_idle.set()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        # Only after the bind succeeded: a failed start must not leave
        # an orphaned coalescer task behind.
        self._coalescer = self._loop.create_task(self._coalesce_loop())
        self.address = self._server.sockets[0].getsockname()[:2]
        return self.address

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish in-flight
        requests (queued coalesced queries included), then close the
        underlying service. Idempotent."""
        if self._server is None or self._drained:
            return
        self._draining = True
        self.stats.draining = True
        self._server.close()
        await self._server.wait_closed()
        # Every admitted request completes: /query futures are resolved
        # by the still-running coalescer, so the idle wait cannot hang.
        await self._all_idle.wait()
        self._queue.put_nowait(_STOP)
        await self._coalescer
        if self._dispatch_tasks:
            await asyncio.gather(
                *list(self._dispatch_tasks), return_exceptions=True
            )
        for writer in list(self._writers):
            writer.close()
        self._drained = True
        if self._close_service:
            await asyncio.to_thread(self.service.close)

    async def serve_forever(self) -> None:
        """Run until cancelled (the asyncio-native entry point)."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.count(connections=1)
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    self.stats.count(requests=1, responses=1, client_errors=1)
                    writer.write(
                        render_response(
                            exc.status, {"error": str(exc)}, keep_alive=False
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                status, payload, headers = await self._handle_request(request)
                keep_alive = request.keep_alive and not self._draining
                writer.write(
                    render_response(
                        status, payload, keep_alive=keep_alive, headers=headers
                    )
                )
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def _handle_request(
        self, request: HttpRequest
    ) -> tuple[int, Any, dict[str, str]]:
        started = time.perf_counter()
        self.stats.count(requests=1)
        self._active_requests += 1
        self._all_idle.clear()
        # A client-supplied X-Trace-Id is an explicit request to trace:
        # it names the root span's trace and bypasses store sampling.
        with self.tracer.trace(
            "request",
            trace_id=request.headers.get("x-trace-id"),
            path=request.path,
            method=request.method,
        ) as root:
            try:
                status, payload = await self._route(request)
            except ProtocolError as exc:
                status, payload = exc.status, {"error": str(exc)}
            except DeadlineExceededError as exc:
                # Before GPCError (its base class): a blown deadline is
                # the request's budget running out, not a bad request.
                # The partial span tree lands in the store below (5xx
                # traces bypass sampling).
                self.stats.count(timeouts=1)
                status, payload = 504, {
                    "error": f"{type(exc).__name__}: {exc}"
                }
            except GPCError as exc:
                # Library errors are the client's: bad syntax, unknown ids,
                # type errors. The message names the exception class so the
                # caller can tell a ParseError from an UnknownIdError.
                status, payload = 400, {
                    "error": f"{type(exc).__name__}: {exc}"
                }
            except Exception as exc:  # pragma: no cover - defensive
                status, payload = 500, {
                    "error": f"internal error: {type(exc).__name__}: {exc}"
                }
            finally:
                self._active_requests -= 1
                if self._active_requests == 0:
                    self._all_idle.set()
            if root:
                root.set_attr("status", status)
                if status >= 500:
                    root.set_error(f"HTTP {status}")
        if status == 200:
            self.stats.count(responses=1)
        elif status in (429, 503):
            self.stats.count(responses=1, rejected=1)
        elif status < 500:
            self.stats.count(responses=1, client_errors=1)
        else:
            self.stats.count(responses=1, server_errors=1)
        elapsed = time.perf_counter() - started
        self.stats.latency.record(elapsed)
        headers = {"X-Trace-Id": root.trace_id} if root else {}
        if self.log_requests:
            self._log_access(request, status, elapsed, root)
        return status, payload, headers

    async def _route(self, request: HttpRequest) -> tuple[int, Any]:
        methods = self.ROUTES.get(request.path)
        if methods is None:
            raise ProtocolError(404, f"no such endpoint {request.path!r}")
        if request.method not in methods:
            raise ProtocolError(
                405, f"{request.path} expects {' or '.join(methods)}"
            )
        if request.path == "/healthz":
            return 200, {
                "status": "draining" if self._draining else "ok",
                "version": self.service.version,
                "draining": self._draining,
            }
        if request.path == "/stats":
            return 200, self.stats.as_dict(self.service.stats)
        if request.path == "/trace":
            return self._handle_trace(request)
        if request.path == "/metrics":
            return 200, self._render_metrics()
        if request.path == "/insights":
            return self._handle_insights(request)
        if request.path == "/lint":
            # Static analysis only — never touches the graph, so it is
            # answered during drain like the other read-only endpoints.
            return await self._handle_lint(request)
        if self._draining:
            raise ProtocolError(503, "server is draining")
        if request.path == "/query":
            return await self._handle_query(request)
        if request.path == "/batch":
            return await self._handle_batch(request)
        if request.path == "/mutate":
            return await self._handle_mutate(request)
        return await self._handle_explain(request)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    async def _handle_query(self, request: HttpRequest) -> tuple[int, Any]:
        with span("server.parse"):
            body = json_body(request)
            if not isinstance(body, dict) or not isinstance(
                body.get("query"), str
            ):
                raise ProtocolError(
                    400, 'body must be {"query": "<gpc>", ...}'
                )
            deadline_ms = body.get("deadline_ms")
            if deadline_ms is not None and (
                isinstance(deadline_ms, bool)
                or not isinstance(deadline_ms, (int, float))
                or deadline_ms <= 0
            ):
                raise ProtocolError(
                    400, '"deadline_ms" must be a positive number'
                )
        if self._queue.qsize() >= self.max_queue_depth:
            raise ProtocolError(429, "query queue is full, retry later")
        future = self._loop.create_future()
        self.stats.count(queries=1)
        # The deadline enters the contextvar context *before* the copy,
        # so the engine's deepening loops see it in the evaluation
        # thread the coalescer dispatches this pending to.
        with deadline_scope(
            deadline_ms / 1000.0 if deadline_ms is not None else None
        ):
            self._queue.put_nowait(
                _Pending(
                    body["query"],
                    bool(body.get("use_cache", True)),
                    future,
                    ctx=contextvars.copy_context(),
                    root=current_span() or NULL_SPAN,
                    enqueued=time.perf_counter(),
                )
            )
        result = await future
        version = self.service.version
        # Small payloads encode inline; big answer sets hop to a
        # worker thread so serialisation never stalls the event loop
        # (and every other connection) for milliseconds.
        if len(result) <= ENCODE_INLINE_LIMIT:
            payload = wire.encode_answers(result)
            payload["version"] = version
            return 200, payload
        return 200, await asyncio.to_thread(
            self._render_answers, result, version
        )

    async def _handle_batch(self, request: HttpRequest) -> tuple[int, Any]:
        with span("server.parse"):
            body = json_body(request)
            queries = body.get("queries") if isinstance(body, dict) else None
            if not isinstance(queries, list) or not all(
                isinstance(query, str) for query in queries
            ):
                raise ProtocolError(
                    400, 'body must be {"queries": ["<gpc>", ...]}'
                )
            use_cache = bool(body.get("use_cache", True))
        # One context copy per query: each evaluation thread inherits
        # this request's root span, so every member's service/engine
        # spans share the batch request's trace id.
        contexts = [contextvars.copy_context() for _ in queries]
        async with self._slot():
            outcomes = await asyncio.to_thread(
                self.service.evaluate_batch,
                queries,
                use_cache=use_cache,
                return_exceptions=True,
                contexts=contexts,
            )
        self.stats.count(batches=1)
        version = self.service.version
        # Batches can carry arbitrarily many answer sets: always
        # serialise off the event loop.
        return 200, await asyncio.to_thread(
            self._render_batch, outcomes, version
        )

    async def _handle_mutate(self, request: HttpRequest) -> tuple[int, Any]:
        body = json_body(request)
        ops = body.get("ops") if isinstance(body, dict) else None
        if not isinstance(ops, list):
            raise ProtocolError(400, 'body must be {"ops": [{...}, ...]}')
        async with self._slot():
            results = await asyncio.to_thread(self._apply_mutations, ops)
        self.stats.count(mutations=len(ops))
        return 200, {"results": results, "version": self.service.version}

    async def _handle_explain(self, request: HttpRequest) -> tuple[int, Any]:
        query = request.params.get("query")
        if not query:
            raise ProtocolError(400, "/explain expects ?query=<gpc>")
        analyze = request.params.get("analyze", "").lower() in (
            "1",
            "true",
            "yes",
        )
        async with self._slot():
            text = await asyncio.to_thread(
                self.service.explain, query, analyze=analyze
            )
        return 200, {"explain": text, "version": self.service.version}

    async def _handle_lint(self, request: HttpRequest) -> tuple[int, Any]:
        """Static-analysis diagnostics for one query, no evaluation.

        ``GET /lint?query=<gpc>`` or ``POST /lint`` with
        ``{"query": "<gpc>"}`` (POST avoids URL-length limits for big
        queries). Parse/type failures come back as ``GPC000``/``GPC001``
        diagnostics in a 200, not as a 4xx — the endpoint is total.
        """
        if request.method == "GET":
            query = request.params.get("query")
            if not query:
                raise ProtocolError(400, "/lint expects ?query=<gpc>")
        else:
            body = json_body(request)
            if not isinstance(body, dict) or not isinstance(
                body.get("query"), str
            ):
                raise ProtocolError(400, 'body must be {"query": "<gpc>"}')
            query = body["query"]
        # Linting compiles the plan (cached), so hop off the event loop.
        diagnostics = await asyncio.to_thread(self.service.lint, query)
        self.stats.count(lints=1)
        return 200, {
            "diagnostics": [d.as_dict() for d in diagnostics],
            "provably_empty": any(
                d.code == analysis.PROVABLY_EMPTY for d in diagnostics
            ),
            "version": self.service.version,
        }

    def _render_answers(self, result, version: int) -> PreRendered:
        payload = wire.encode_answers(result)
        payload["version"] = version
        return PreRendered(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        )

    def _render_batch(self, outcomes, version: int) -> PreRendered:
        results: list[Any] = []
        for outcome in outcomes:
            if isinstance(outcome, Exception):
                results.append(
                    {"error": f"{type(outcome).__name__}: {outcome}"}
                )
            else:
                results.append(wire.encode_answers(outcome))
        return PreRendered(
            json.dumps(
                {"results": results, "version": version}, sort_keys=True
            ).encode("utf-8")
        )

    # ------------------------------------------------------------------
    # Observability endpoints
    # ------------------------------------------------------------------

    def _handle_trace(self, request: HttpRequest) -> tuple[int, Any]:
        store = self.tracer.store
        trace_id = request.params.get("id")
        if trace_id:
            tree = store.find(trace_id)
            if tree is None:
                raise ProtocolError(404, f"no recorded trace {trace_id!r}")
            return 200, {"trace": tree}
        limit_param = request.params.get("limit")
        limit = None
        if limit_param is not None:
            try:
                limit = int(limit_param)
            except ValueError as exc:
                raise ProtocolError(
                    400, f"bad limit {limit_param!r}"
                ) from exc
        return 200, {
            "recent": store.recent(limit),
            "slow": store.slow(limit),
            "counters": store.counters(),
        }

    def _handle_insights(self, request: HttpRequest) -> tuple[int, Any]:
        """Top-K fingerprint-aggregated workload profiles as JSON.

        ``?sort=`` picks the ranking (``total_time`` default, or
        ``calls`` / ``misestimate`` / ``errors``); ``?limit=`` bounds
        the result count. Answered during drain, like the other
        read-only observability endpoints.
        """
        registry = getattr(self.service, "insights", None)
        if registry is None:
            raise ProtocolError(
                404, "the service exposes no insights registry"
            )
        sort = request.params.get("sort", "total_time")
        limit_param = request.params.get("limit")
        limit = INSIGHTS_DEFAULT_LIMIT
        if limit_param is not None:
            try:
                limit = int(limit_param)
            except ValueError as exc:
                raise ProtocolError(
                    400, f"bad limit {limit_param!r}"
                ) from exc
        try:
            top = registry.top(sort=sort, limit=limit)
        except ValueError as exc:
            raise ProtocolError(400, str(exc)) from exc
        return 200, {
            "insights": top,
            "counters": registry.counters(),
            "sort": sort,
            "limit": limit,
        }

    def _render_metrics(self) -> PreRendered:
        """The whole serving stack's counters as one Prometheus text
        exposition: transport (``repro_server_*``), service or cluster
        runtime, engine work (``repro_engine_*``), true fixed-bucket
        latency histograms, per-worker labeled series, and trace-store
        accounting (``repro_traces_*``)."""
        server = self.stats.as_dict()
        service_stats = self.service.stats
        service = service_stats.as_dict()
        is_cluster = "scatters" in service
        prefix = "repro_cluster" if is_cluster else "repro_service"
        engine = service.pop("engine", None)
        per_worker = service.pop("per_worker", None)
        lines = obs_metrics.mapping_lines(
            "repro_server", server, skip=("latency",)
        )
        lines.extend(
            obs_metrics.histogram_lines(
                "repro_server_request_latency_seconds",
                self.stats.latency.histogram(),
            )
        )
        lines.extend(
            obs_metrics.mapping_lines(
                prefix, service, skip=("latency", "shard_latency")
            )
        )
        lines.extend(
            obs_metrics.histogram_lines(
                f"{prefix}_latency_seconds",
                service_stats.latency.histogram(),
            )
        )
        if is_cluster:
            lines.extend(
                obs_metrics.histogram_lines(
                    "repro_cluster_shard_latency_seconds",
                    service_stats.shard_latency.histogram(),
                )
            )
        if per_worker:
            lines.extend(
                obs_metrics.labeled_summary_lines(
                    "repro_cluster_worker_latency_seconds",
                    "worker",
                    per_worker,
                )
            )
        if engine:
            lines.extend(obs_metrics.mapping_lines("repro_engine", engine))
        insights = getattr(self.service, "insights", None)
        if insights is not None and insights.enabled:
            # Bounded top-K per-fingerprint series; registry-level
            # counters already flow via the stats "insights" sub-dict.
            lines.extend(
                obs_metrics.labeled_summary_lines(
                    "repro_insights",
                    "fingerprint",
                    insights.labeled_series(INSIGHTS_METRICS_TOPK),
                )
            )
        lines.extend(
            obs_metrics.mapping_lines(
                "repro_traces", self.tracer.store.counters()
            )
        )
        body = "\n".join(lines) + "\n"
        return PreRendered(
            body.encode("utf-8"), content_type=METRICS_CONTENT_TYPE
        )

    def _log_access(
        self, request: HttpRequest, status: int, elapsed: float, root
    ) -> None:
        """One structured JSON line per answered request."""
        record: dict[str, Any] = {
            "method": request.method,
            "path": request.path,
            "status": status,
            "latency_ms": round(elapsed * 1000.0, 3),
        }
        if root:
            record["trace_id"] = root.trace_id
            batch = (root.attributes or {}).get("coalesce_batch")
            if batch is not None:
                record["coalesce_batch"] = batch
        self._access_log.info(json.dumps(record, sort_keys=True))

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------

    def _slot(self) -> "_SlotContext":
        """One bounded in-flight evaluation slot; sheds with 429 when
        ``max_queue_depth`` requests are already waiting for one."""
        return _SlotContext(self)

    # ------------------------------------------------------------------
    # The micro-batch coalescer
    # ------------------------------------------------------------------

    async def _coalesce_loop(self) -> None:
        while True:
            item = await self._queue.get()
            if item is _STOP:
                return
            if self.coalesce_window_s > 0 and not self._draining:
                # The coalescing window: linger briefly so concurrent
                # arrivals land in this batch instead of the next.
                await asyncio.sleep(self.coalesce_window_s)
            batch = [item]
            stop_seen = False
            while len(batch) < self.coalesce_max:
                try:
                    extra = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is _STOP:
                    stop_seen = True
                    break
                batch.append(extra)
            # Acquiring the slot *before* spawning keeps dispatches
            # bounded by max_in_flight; arrivals during the wait pile
            # up in the queue and coalesce into the next batch.
            await self._semaphore.acquire()
            task = self._loop.create_task(self._dispatch(batch))
            self._dispatch_tasks.add(task)
            task.add_done_callback(self._dispatch_tasks.discard)
            if stop_seen:
                return

    async def _dispatch(self, batch: list[_Pending]) -> None:
        try:
            self.stats.record_dispatch(len(batch))
            # The coalescer acts on each request's behalf here, outside
            # its contextvar context: the queue wait and the dispatch
            # are timed as explicit child spans on each root.
            now = time.perf_counter()
            for pending in batch:
                if pending.root:
                    pending.root.child_timed(
                        "server.coalesce_wait", pending.enqueued, now
                    )
                    pending.root.set_attr("coalesce_batch", len(batch))
            for flag in (True, False):
                group = [p for p in batch if p.use_cache is flag]
                if not group:
                    continue
                queries = [pending.query for pending in group]
                dispatched = time.perf_counter()
                try:
                    outcomes = await asyncio.to_thread(
                        self.service.evaluate_batch,
                        queries,
                        use_cache=flag,
                        return_exceptions=True,
                        contexts=[pending.ctx for pending in group],
                    )
                except Exception as exc:
                    outcomes = [exc] * len(group)
                done = time.perf_counter()
                # Spans before futures: a root may be serialised into
                # the trace store as soon as its request coroutine
                # wakes, and the dispatch span must already be on it.
                for pending in group:
                    if pending.root:
                        pending.root.child_timed(
                            "server.dispatch", dispatched, done
                        )
                for pending, outcome in zip(group, outcomes):
                    if pending.future.done():
                        continue
                    if isinstance(outcome, Exception):
                        pending.future.set_exception(outcome)
                    else:
                        pending.future.set_result(outcome)
        finally:
            self._semaphore.release()

    # ------------------------------------------------------------------
    # Mutations (run in a worker thread)
    # ------------------------------------------------------------------

    def _apply_mutations(self, ops: list) -> list:
        """Apply ops in order through the service's locking
        delegations. Non-transactional: a failing op stops the run and
        surfaces as 400, earlier ops stay applied (the response's
        ``applied`` count says how many)."""
        results: list = []
        for index, op in enumerate(ops):
            try:
                results.append(self._apply_one(op))
            except ProtocolError:
                raise
            except GPCError as exc:
                raise ProtocolError(
                    400,
                    f"op {index} failed after {index} applied: "
                    f"{type(exc).__name__}: {exc}",
                ) from exc
        return results

    def _apply_one(self, op: Any) -> Any:
        if not isinstance(op, dict) or not isinstance(op.get("op"), str):
            raise ProtocolError(400, f'malformed op {op!r}: expected {{"op": ...}}')
        kind = op["op"]
        service = self.service
        if kind == "add_node":
            node = service.add_node(
                wire._decode_key(op.get("key")),
                op.get("labels", ()),
                op.get("properties") or None,
            )
            return wire.encode_id(node)
        if kind == "add_edge":
            edge = service.add_edge(
                wire._decode_key(op.get("key")),
                NodeId(wire._decode_key(op.get("source"))),
                NodeId(wire._decode_key(op.get("target"))),
                op.get("labels", ()),
                op.get("properties") or None,
            )
            return wire.encode_id(edge)
        if kind == "add_undirected_edge":
            edge = service.add_undirected_edge(
                wire._decode_key(op.get("key")),
                NodeId(wire._decode_key(op.get("endpoint_a"))),
                NodeId(wire._decode_key(op.get("endpoint_b"))),
                op.get("labels", ()),
                op.get("properties") or None,
            )
            return wire.encode_id(edge)
        if kind == "set_property":
            service.set_property(
                wire.decode_id(op.get("element")),
                op.get("key"),
                op.get("value"),
            )
            return None
        if kind == "remove_node":
            service.remove_node(NodeId(wire._decode_key(op.get("key"))))
            return None
        if kind == "remove_edge":
            service.remove_edge(
                DirectedEdgeId(wire._decode_key(op.get("key")))
            )
            return None
        if kind == "remove_undirected_edge":
            service.remove_undirected_edge(
                UndirectedEdgeId(wire._decode_key(op.get("key")))
            )
            return None
        raise ProtocolError(400, f"unknown mutation op {kind!r}")

    def __repr__(self) -> str:
        where = f"{self.address[0]}:{self.address[1]}" if self.address else "unbound"
        return (
            f"GraphServer({where}, service={type(self.service).__name__}, "
            f"draining={self._draining})"
        )


class _SlotContext:
    """``async with`` admission into the bounded in-flight semaphore."""

    __slots__ = ("_server",)

    def __init__(self, server: GraphServer):
        self._server = server

    async def __aenter__(self) -> None:
        server = self._server
        if server._waiting_slots >= server.max_queue_depth:
            raise ProtocolError(429, "server is saturated, retry later")
        server._waiting_slots += 1
        try:
            await server._semaphore.acquire()
        finally:
            server._waiting_slots -= 1

    async def __aexit__(self, *exc_info) -> None:
        self._server._semaphore.release()


# ---------------------------------------------------------------------------
# Background serving for synchronous callers (tests, benches, demos)
# ---------------------------------------------------------------------------


class ServerHandle:
    """A :class:`GraphServer` running on a dedicated event-loop thread.

    ``stop()`` drains gracefully and joins the thread; the handle is a
    context manager so tests and demos cannot leak the loop.
    """

    def __init__(
        self,
        server: GraphServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ):
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    def stop(self, timeout: float = 30.0) -> None:
        """Drain the server, stop the loop, join the thread (idempotent)."""
        if self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.server.drain(), self._loop
            ).result(timeout)
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_background(service, **kwargs) -> ServerHandle:
    """Start a :class:`GraphServer` on its own daemon thread.

    Blocks until the socket is bound and returns a
    :class:`ServerHandle` whose ``address`` is ready to connect to.
    Startup failures (e.g. a taken port) re-raise in the caller.
    """
    server = GraphServer(service, **kwargs)
    started = threading.Event()
    holder: dict[str, Any] = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        holder["loop"] = loop
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # startup failed: surface it
            holder["error"] = exc
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    thread = threading.Thread(target=run, daemon=True, name="gpc-server")
    thread.start()
    started.wait()
    error = holder.get("error")
    if error is not None:
        thread.join()
        raise error
    return ServerHandle(server, holder["loop"], thread)
