"""Radix-order enumeration of the paths of a graph.

Theorem 12's enumerator considers candidate paths "in increasing
length, and then by the ordering we assume on node and edge ids" —
radix order. This module materialises that order lazily: level ``L``
holds every path (walk) of length ``L``, sorted lexicographically, and
levels are produced in increasing ``L``.
"""

from __future__ import annotations

from typing import Iterator

from repro.graph.ids import NodeId
from repro.graph.paths import Path
from repro.graph.property_graph import PropertyGraph

__all__ = ["iter_paths_radix", "extend_by_one_edge"]


def extend_by_one_edge(graph: PropertyGraph, path: Path) -> list[Path]:
    """All one-edge extensions of ``path`` (forward, backward and
    undirected traversals from its target), deduplicated."""
    node = path.tgt
    steps: set[tuple] = set()
    for edge in graph.out_edges(node):
        steps.add((edge, graph.target(edge)))
    for edge in graph.in_edges(node):
        steps.add((edge, graph.source(edge)))
    for edge in graph.undirected_edges_at(node):
        steps.add((edge, graph.other_endpoint(edge, node)))
    return [
        Path(path.elements + (edge, target))
        for edge, target in sorted(steps)
    ]


def iter_paths_radix(
    graph: PropertyGraph,
    max_length: int,
    start: NodeId | None = None,
) -> Iterator[Path]:
    """Yield every path of ``graph`` with ``len <= max_length`` in
    radix order; restrict to paths starting at ``start`` if given.

    The number of walks grows exponentially with length — callers
    control the horizon via ``max_length``.
    """
    if start is not None:
        level = [Path.node(start)] if graph.has_node(start) else []
    else:
        level = [Path.node(node) for node in sorted(graph.nodes)]
    length = 0
    while level and length <= max_length:
        yield from level
        if length == max_length:
            return
        next_level: list[Path] = []
        for path in level:
            next_level.extend(extend_by_one_edge(graph, path))
        next_level.sort()
        level = next_level
        length += 1
