"""The Theorem 12 answer enumerator, with working-set accounting.

The proof's machine enumerates candidate paths in radix order (so it
never stores the answer set), checks each candidate against the
pattern with the polynomial-space subroutine of Lemma 19, and handles
``shortest`` by remembering the per-endpoint-pair best length seen so
far. The interesting *measured* quantity is the size of the live
working set — the analogue of the machine's work tape — which stays
polynomial in the graph for a fixed query (data complexity) even as
the number of emitted answers grows much larger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import RestrictorError
from repro.graph.ids import NodeId
from repro.graph.paths import is_simple, is_trail
from repro.graph.property_graph import PropertyGraph
from repro.gpc import ast
from repro.gpc.answers import Answer
from repro.gpc.collect import CollectMode
from repro.enumeration.bounds import lemma16_length_bound
from repro.enumeration.radix import iter_paths_radix
from repro.enumeration.span_matcher import match_on_path

__all__ = ["EnumerationStats", "enumerate_answers"]


@dataclass
class EnumerationStats:
    """Resource accounting for one enumeration run."""

    paths_enumerated: int = 0
    answers_emitted: int = 0
    peak_working_set: int = 0
    length_bound: int = 0
    max_answer_length: int = 0
    _live: int = field(default=0, repr=False)

    def track_live(self, items: int) -> None:
        self._live = items
        if items > self.peak_working_set:
            self.peak_working_set = items


def enumerate_answers(
    graph: PropertyGraph,
    query: ast.PatternQuery,
    max_length: int | None = None,
    collect_mode: CollectMode = CollectMode.GROUPING,
) -> tuple[list[Answer], EnumerationStats]:
    """Enumerate ``[[query]]_G`` in radix order of the witnessing path.

    ``max_length`` overrides the Lemma 16 horizon (needed in practice
    for ``shortest`` over unbounded patterns, whose theoretical bound
    is astronomically loose).
    """
    stats = EnumerationStats()
    restrictor = query.restrictor
    bound = lemma16_length_bound(graph, restrictor, query.pattern)
    if max_length is not None:
        bound = min(bound, max_length)
    stats.length_bound = bound
    answers = list(_generate(graph, query, bound, collect_mode, stats))
    return answers, stats


def _generate(
    graph: PropertyGraph,
    query: ast.PatternQuery,
    bound: int,
    collect_mode: CollectMode,
    stats: EnumerationStats,
) -> Iterator[Answer]:
    restrictor = query.restrictor
    # For plain `shortest`, radix order makes the first match per
    # endpoint pair shortest; later, longer candidates for that pair
    # are skipped. For `shortest simple/trail` the same works within
    # the filtered candidate stream.
    found_pairs: dict[tuple[NodeId, NodeId], int] = {}
    for path in iter_paths_radix(graph, bound):
        stats.paths_enumerated += 1
        if restrictor.mode == "trail" and not is_trail(path):
            continue
        if restrictor.mode == "simple" and not is_simple(path):
            continue
        if not restrictor.shortest and restrictor.mode is None:
            raise RestrictorError(f"invalid restrictor {restrictor!r}")
        if restrictor.shortest:
            pair = (path.src, path.tgt)
            best = found_pairs.get(pair)
            if best is not None and len(path) > best:
                continue
        assignments = match_on_path(query.pattern, path, graph, collect_mode)
        if not assignments:
            continue
        if restrictor.shortest:
            found_pairs[(path.src, path.tgt)] = len(path)
            stats.track_live(len(found_pairs))
        for mu in sorted(assignments, key=repr):
            if query.name is not None:
                mu = mu.bind(query.name, path)
            stats.answers_emitted += 1
            if len(path) > stats.max_answer_length:
                stats.max_answer_length = len(path)
            yield Answer((path,), mu)
