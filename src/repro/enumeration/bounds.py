"""The Appendix C size bounds (Lemmas 16 and 17).

Lemma 16 bounds witnessing path lengths per restrictor:

- ``simple``   -> ``|N|``;
- ``trail``    -> ``|E_d| + |E_u|``;
- ``shortest`` -> ``(|N| + |E_d| + |E_u|) * 2^|pi|``.

Lemma 17 bounds assignment sizes: ``|mu| <= |p| * (2^(|pi|+1) - 2)``,
where ``|p|`` counts node and edge occurrences in the witnessing path
and ``|mu|`` totals the path lengths and variable occurrences inside
the assignment. Both bounds are checked empirically by experiment E8.
"""

from __future__ import annotations

from repro.graph.paths import Path
from repro.graph.property_graph import PropertyGraph
from repro.gpc import ast
from repro.gpc.assignments import Assignment
from repro.gpc.values import GroupValue, NothingType, Value

__all__ = [
    "lemma16_length_bound",
    "lemma17_mu_bound",
    "mu_size",
    "value_size",
]


def lemma16_length_bound(
    graph: PropertyGraph, restrictor: ast.Restrictor, pattern: ast.Pattern
) -> int:
    """The Lemma 16 bound on ``len(p)`` for answers of ``rho pi``."""
    if restrictor.mode == "simple":
        return graph.num_nodes
    if restrictor.mode == "trail":
        return graph.num_edges
    # shortest (alone): (|N| + |E|) * 2^|pi|.
    size = ast.pattern_size(pattern)
    return (graph.num_nodes + graph.num_edges) * (2 ** min(size, 62))


def lemma17_mu_bound(path: Path, pattern: ast.Pattern) -> int:
    """The Lemma 17 bound ``|p| * (2^(|pi|+1) - 2)``."""
    size = ast.pattern_size(pattern)
    return path.size * (2 ** (min(size, 60) + 1) - 2)


def value_size(value: Value) -> int:
    """Size contribution of one value: path lengths plus nested
    variable-occurrence counts (Appendix C's measure)."""
    if isinstance(value, Path):
        return len(value)
    if isinstance(value, NothingType):
        return 0
    if isinstance(value, GroupValue):
        return sum(len(p) + 1 + value_size(v) for p, v in value.entries)
    # Node and edge references have unit size.
    return 1


def mu_size(assignment: Assignment) -> int:
    """``|mu|``: total path length plus variable occurrences."""
    return sum(1 + value_size(value) for value in assignment.values())
