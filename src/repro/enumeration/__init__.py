"""Answer enumeration and size bounds (Section 6 + Appendix C).

- :mod:`repro.enumeration.radix` — paths of a graph in radix order
  (by length, then lexicographically), the order Theorem 12's
  enumerator consumes candidates in;
- :mod:`repro.enumeration.bounds` — the Lemma 16 path-length bounds
  and the Lemma 17 assignment-size bound;
- :mod:`repro.enumeration.span_matcher` — matching a pattern against a
  *fixed* path (the Lemma 18/19 polynomial-space subroutine), an
  independent implementation used to cross-validate the engine;
- :mod:`repro.enumeration.enumerator` — the instrumented Theorem 12
  enumerator with working-set accounting.
"""

from repro.enumeration.radix import iter_paths_radix
from repro.enumeration.bounds import (
    mu_size,
    lemma16_length_bound,
    lemma17_mu_bound,
)
from repro.enumeration.span_matcher import span_matches, match_on_path
from repro.enumeration.enumerator import EnumerationStats, enumerate_answers

__all__ = [
    "iter_paths_radix",
    "mu_size",
    "lemma16_length_bound",
    "lemma17_mu_bound",
    "span_matches",
    "match_on_path",
    "EnumerationStats",
    "enumerate_answers",
]
