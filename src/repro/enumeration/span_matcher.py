"""Matching a pattern against a fixed path — the Lemma 18/19 routine.

Given a path ``p = u0 e1 u1 ... en un`` of a graph, this module
computes, for every span ``(i, j)`` of node positions, the set of
assignments ``mu`` with ``(p[i..j], mu) in [[pi]]_G`` — the dynamic
program behind Lemma 18 (variable-free patterns in PTIME) and Lemma 19
(fixed patterns in PSPACE).

Besides powering the Theorem 12 enumerator, this is a *second,
independent* implementation of the pattern semantics: the differential
tests check it against the compositional engine on random inputs.
"""

from __future__ import annotations

from repro.errors import EvaluationLimitError
from repro.graph.paths import Path
from repro.graph.property_graph import PropertyGraph
from repro.gpc import ast
from repro.gpc.assignments import EMPTY_ASSIGNMENT, Assignment
from repro.gpc.collect import CollectAccumulator, CollectMode, empty_group_assignment
from repro.gpc.conditions import satisfies
from repro.gpc.minlength import min_path_length
from repro.gpc.typing import infer_schema
from repro.gpc.values import Nothing

__all__ = ["span_matches", "match_on_path"]

Span = tuple[int, int]
SpanTable = dict[Span, frozenset[Assignment]]

_MAX_POWERS = 10_000


def span_matches(
    pattern: ast.Pattern,
    path: Path,
    graph: PropertyGraph,
    collect_mode: CollectMode = CollectMode.GROUPING,
) -> SpanTable:
    """All ``(span, mu)`` such that the subpath at ``span`` matches."""
    matcher = _SpanMatcher(path, graph, collect_mode)
    return matcher.eval(pattern)


def match_on_path(
    pattern: ast.Pattern,
    path: Path,
    graph: PropertyGraph,
    collect_mode: CollectMode = CollectMode.GROUPING,
) -> frozenset[Assignment]:
    """The assignments ``mu`` with ``(path, mu) in [[pattern]]_G`` —
    i.e. matches spanning the *whole* path."""
    table = span_matches(pattern, path, graph, collect_mode)
    return table.get((0, len(path)), frozenset())


class _SpanMatcher:
    def __init__(self, path: Path, graph: PropertyGraph, collect_mode: CollectMode):
        self.path = path
        self.graph = graph
        self.collect_mode = collect_mode
        self.n = len(path)
        self._memo: dict[ast.Pattern, SpanTable] = {}

    def eval(self, pattern: ast.Pattern) -> SpanTable:
        if pattern not in self._memo:
            self._memo[pattern] = self._dispatch(pattern)
        return self._memo[pattern]

    # ------------------------------------------------------------------

    def _dispatch(self, pattern: ast.Pattern) -> SpanTable:
        if isinstance(pattern, ast.NodePattern):
            return self._eval_node(pattern)
        if isinstance(pattern, ast.EdgePattern):
            return self._eval_edge(pattern)
        if isinstance(pattern, ast.Concat):
            return self._eval_concat(pattern)
        if isinstance(pattern, ast.Union):
            return self._eval_union(pattern)
        if isinstance(pattern, ast.Conditioned):
            inner = self.eval(pattern.pattern)
            return {
                span: kept
                for span, mus in inner.items()
                if (
                    kept := frozenset(
                        mu
                        for mu in mus
                        if satisfies(self.graph, mu, pattern.condition)
                    )
                )
            }
        if isinstance(pattern, ast.Repeat):
            return self._eval_repeat(pattern)
        raise EvaluationLimitError(
            f"span matcher does not support extension node {pattern!r}"
        )

    def _eval_node(self, pattern: ast.NodePattern) -> SpanTable:
        table: SpanTable = {}
        nodes = self.path.nodes
        for i, node in enumerate(nodes):
            if pattern.label is not None and pattern.label not in self.graph.labels(
                node
            ):
                continue
            mu = (
                Assignment({pattern.variable: node})
                if pattern.variable
                else EMPTY_ASSIGNMENT
            )
            table[(i, i)] = frozenset({mu})
        return table

    def _eval_edge(self, pattern: ast.EdgePattern) -> SpanTable:
        table: SpanTable = {}
        graph = self.graph
        # ``edge in graph.directed_edges`` would scan the snapshot's
        # carrier tuple — O(E) per path step.
        has_directed = getattr(graph, "has_directed_edge", None)
        for i, (before, edge, after) in enumerate(self.path.steps()):
            if pattern.label is not None and pattern.label not in graph.labels(edge):
                continue
            if (
                has_directed(edge)
                if has_directed is not None
                else edge in graph.directed_edges
            ):
                if pattern.direction is ast.Direction.FORWARD:
                    ok = graph.source(edge) == before and graph.target(edge) == after
                elif pattern.direction is ast.Direction.BACKWARD:
                    ok = graph.source(edge) == after and graph.target(edge) == before
                else:
                    ok = False
            else:
                ok = pattern.direction is ast.Direction.UNDIRECTED
            if not ok:
                continue
            mu = (
                Assignment({pattern.variable: edge})
                if pattern.variable
                else EMPTY_ASSIGNMENT
            )
            table.setdefault((i, i + 1), set())
            table[(i, i + 1)] = frozenset(set(table[(i, i + 1)]) | {mu})
        return table

    def _eval_concat(self, pattern: ast.Concat) -> SpanTable:
        left = self.eval(pattern.left)
        right = self.eval(pattern.right)
        by_start: dict[int, list[tuple[int, frozenset[Assignment]]]] = {}
        for (k, j), mus in right.items():
            by_start.setdefault(k, []).append((j, mus))
        out: dict[Span, set[Assignment]] = {}
        for (i, k), left_mus in left.items():
            for j, right_mus in by_start.get(k, ()):
                for left_mu in left_mus:
                    for right_mu in right_mus:
                        merged = left_mu.unify(right_mu)
                        if merged is not None:
                            out.setdefault((i, j), set()).add(merged)
        return {span: frozenset(mus) for span, mus in out.items()}

    def _eval_union(self, pattern: ast.Union) -> SpanTable:
        domain = frozenset(infer_schema(pattern))
        out: dict[Span, set[Assignment]] = {}
        for branch in (pattern.left, pattern.right):
            table = self.eval(branch)
            missing = domain - frozenset(infer_schema(branch))
            for span, mus in table.items():
                for mu in mus:
                    if missing:
                        padded = dict(mu)
                        padded.update({v: Nothing for v in missing})
                        mu = Assignment(padded)
                    out.setdefault(span, set()).add(mu)
        return {span: frozenset(mus) for span, mus in out.items()}

    def _eval_repeat(self, pattern: ast.Repeat) -> SpanTable:
        body = self.eval(pattern.pattern)
        domain = tuple(sorted(infer_schema(pattern.pattern)))
        out: dict[Span, set[Assignment]] = {}
        if pattern.lower == 0:
            zero = empty_group_assignment(domain)
            for i in range(self.n + 1):
                out.setdefault((i, i), set()).add(zero)
        if pattern.upper == 0:
            return {span: frozenset(mus) for span, mus in out.items()}

        # Power iteration over (span, accumulator) states.
        State = tuple[int, int, CollectAccumulator]
        subpath = self.path.subpath
        by_start: dict[int, list[tuple[int, frozenset[Assignment]]]] = {}
        for (i, j), mus in body.items():
            by_start.setdefault(i, []).append((j, mus))
        seed = CollectAccumulator(mode=self.collect_mode)
        current: set[State] = set()
        for (i, j), mus in body.items():
            for mu in mus:
                extended = seed.extend(subpath(i, j), mu)
                if extended is not None:
                    current.add((i, j, extended))
        cap = self._power_cap(pattern, body)
        power = 1
        history: dict[frozenset, int] = {}
        while current:
            if power >= pattern.lower and (
                pattern.upper is None or power <= pattern.upper
            ):
                for i, j, accumulator in current:
                    out.setdefault((i, j), set()).add(accumulator.finalize(domain))
            if pattern.upper is not None and power >= pattern.upper:
                break
            if power >= cap and power >= pattern.lower:
                break
            frozen = frozenset(current)
            if frozen in history:
                first = history[frozen]
                period = power - first
                by_index = {index: states for states, index in history.items()}
                for index in range(first, power):
                    reachable = index
                    while reachable < pattern.lower:
                        reachable += period
                    if pattern.upper is not None and reachable > pattern.upper:
                        continue
                    for i, j, accumulator in by_index[index]:
                        out.setdefault((i, j), set()).add(
                            accumulator.finalize(domain)
                        )
                break
            history[frozen] = power
            if power >= _MAX_POWERS:
                raise EvaluationLimitError("span matcher power iteration diverged")
            next_states: set[State] = set()
            for i, j, accumulator in current:
                for j2, mus in by_start.get(j, ()):
                    for mu in mus:
                        extended = accumulator.extend(subpath(j, j2), mu)
                        if extended is not None:
                            next_states.add((i, j2, extended))
            current = next_states
            power += 1
        return {span: frozenset(mus) for span, mus in out.items()}

    def _power_cap(self, pattern: ast.Repeat, body: SpanTable) -> int:
        if (
            self.collect_mode is not CollectMode.GROUPING
            or min_path_length(pattern.pattern) >= 1
        ):
            return self.n + 1
        per_position: dict[int, int] = {}
        for (i, j), mus in body.items():
            if i == j:
                per_position[i] = per_position.get(i, 0) + len(mus)
        m = max(per_position.values(), default=0)
        return (self.n + 1) * (m + 1)
