"""``python -m repro.lint`` — lint GPC queries from files or stdin.

Input is one query per line; blank lines and lines starting with ``#``
are skipped. Each query is run through the total
:func:`repro.gpc.analysis.lint_query` entry point, so malformed input
produces ``GPC000``/``GPC001`` diagnostics rather than a traceback.

Usage::

    python -m repro.lint queries.gpc more.gpc
    echo 'TRAIL (x:A) -[:r]-> (y)' | python -m repro.lint
    python -m repro.lint --format json queries.gpc
    python -m repro.lint --strict queries.gpc   # warnings also fail

Exit status: 0 when no query produced an ``error`` diagnostic (or,
under ``--strict``, an ``error`` *or* ``warning``); 1 otherwise; 2 for
usage problems (unreadable file).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterable, Iterator, TextIO

from repro.gpc.analysis import Diagnostic, lint_query

__all__ = ["main", "lint_lines"]

#: One linted query: (source, line number, query text, diagnostics).
Finding = tuple[str, int, str, tuple[Diagnostic, ...]]


def lint_lines(
    lines: Iterable[str], source: str = "<stdin>"
) -> Iterator[Finding]:
    """Yield ``(source, line_number, query, diagnostics)`` per query."""
    for number, raw in enumerate(lines, start=1):
        query = raw.strip()
        if not query or query.startswith("#"):
            continue
        yield source, number, query, lint_query(query)


def _report_text(findings: "list[Finding]", stream: TextIO) -> None:
    for source, number, query, diagnostics in findings:
        if not diagnostics:
            continue
        print(f"{source}:{number}: {query}", file=stream)
        for diagnostic in diagnostics:
            print(f"  {diagnostic.render()}", file=stream)


def _report_json(findings: "list[Finding]", stream: TextIO) -> None:
    payload = [
        {
            "source": source,
            "line": number,
            "query": query,
            "diagnostics": [d.as_dict() for d in diagnostics],
        }
        for source, number, query, diagnostics in findings
    ]
    json.dump(payload, stream, indent=2, sort_keys=True)
    print(file=stream)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Statically analyse GPC queries (one per line).",
    )
    parser.add_argument(
        "files",
        nargs="*",
        help="query files (one query per line; '-' or none reads stdin)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings too, not just errors",
    )
    options = parser.parse_args(argv)

    findings: list[Finding] = []
    for name in options.files or ["-"]:
        if name == "-":
            findings.extend(lint_lines(sys.stdin, "<stdin>"))
        else:
            try:
                with open(name, encoding="utf-8") as handle:
                    findings.extend(lint_lines(handle, name))
            except OSError as exc:
                print(f"error: cannot read {name}: {exc}", file=sys.stderr)
                return 2

    if options.format == "json":
        _report_json(findings, sys.stdout)
    else:
        _report_text(findings, sys.stdout)

    failing = {"error"} if not options.strict else {"error", "warning"}
    failed = any(
        diagnostic.severity in failing
        for _, _, _, diagnostics in findings
        for diagnostic in diagnostics
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
