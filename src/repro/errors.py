"""Exception hierarchy for the GPC reproduction library.

Every error raised by ``repro`` derives from :class:`GPCError`, so callers
can catch library failures with a single ``except`` clause while still
being able to distinguish the broad failure classes below.
"""

from __future__ import annotations

__all__ = [
    "GPCError",
    "GraphError",
    "DuplicateIdError",
    "UnknownIdError",
    "PathError",
    "ParseError",
    "GPCTypeError",
    "UnboundVariableError",
    "TypeMismatchError",
    "IllegalJoinError",
    "EvaluationError",
    "CollectError",
    "DeadlineExceededError",
    "EvaluationLimitError",
    "RestrictorError",
    "TranslationError",
    "DatalogError",
    "WorkloadError",
    "ClusterError",
    "WireError",
]


class GPCError(Exception):
    """Base class for all errors raised by the library."""


# ---------------------------------------------------------------------------
# Graph / data model errors
# ---------------------------------------------------------------------------


class GraphError(GPCError):
    """A property-graph construction or access failed."""


class DuplicateIdError(GraphError):
    """An id was registered twice, or reused across the disjoint id sorts.

    The paper assumes the sets of node ids, directed-edge ids, and
    undirected-edge ids are pairwise disjoint; this error enforces it.
    """


class UnknownIdError(GraphError):
    """An operation referenced a node or edge id not present in the graph."""


class PathError(GraphError):
    """A path is structurally invalid or a concatenation is undefined."""


# ---------------------------------------------------------------------------
# Syntax errors
# ---------------------------------------------------------------------------


class ParseError(GPCError):
    """The concrete GPC syntax could not be parsed.

    Attributes
    ----------
    position:
        Zero-based character offset of the offending token, when known.
    """

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


# ---------------------------------------------------------------------------
# Type system errors (Section 4 of the paper)
# ---------------------------------------------------------------------------


class GPCTypeError(GPCError):
    """An expression is not well-typed under the Figure 2 rules."""


class UnboundVariableError(GPCTypeError):
    """A condition or projection referenced a variable with no derived type."""


class TypeMismatchError(GPCTypeError):
    """Two occurrences of a variable received incompatible types."""


class IllegalJoinError(GPCTypeError):
    """Concatenation or join shares a variable that is not a singleton.

    The typing rules only allow implicit joins over ``Node``/``Edge``
    variables; sharing ``Group``, ``Maybe`` or ``Path`` variables is an
    error (Figure 2, last two rule groups).
    """


# ---------------------------------------------------------------------------
# Evaluation errors (Section 5)
# ---------------------------------------------------------------------------


class EvaluationError(GPCError):
    """Evaluation of a well-typed expression failed."""


class CollectError(EvaluationError):
    """``collect`` was undefined for the given factorization.

    Raised under Approach 1 (syntactic restriction) when a repeated
    pattern may match an edgeless path, and under Approach 2 (run-time
    restriction) when an edgeless factor is encountered.
    """


class EvaluationLimitError(EvaluationError):
    """A configured engine safety limit was exceeded during evaluation."""


class DeadlineExceededError(EvaluationError):
    """The request's deadline passed while evaluation was in progress.

    Raised by :func:`repro.obs.deadline.check_deadline` from the
    engine's long-running loops; the HTTP front end maps it to 504
    (and records the partial span tree for post-mortems).
    """


class RestrictorError(EvaluationError):
    """A query was evaluated without a restrictor, or with an invalid one."""


# ---------------------------------------------------------------------------
# Baseline / translation errors (Section 6)
# ---------------------------------------------------------------------------


class TranslationError(GPCError):
    """A Theorem 11 translation received an unsupported input."""


class DatalogError(GPCError):
    """A Datalog program (regular-query substrate) is malformed."""


class WorkloadError(GPCError):
    """A benchmark workload specification is invalid."""


class ClusterError(GPCError):
    """One or more shards of a scattered evaluation failed.

    Raised by the cluster router after *all* shards have been gathered,
    so sibling shards complete (and their latencies are recorded) even
    when one worker raises. ``failures`` holds ``ShardFailure`` entries
    (shard index, worker tag, original exception); the first original
    exception is chained as ``__cause__``.
    """

    def __init__(self, message: str, failures=()):
        super().__init__(message)
        self.failures = tuple(failures)


class WireError(GPCError):
    """A wire payload cannot be encoded or decoded.

    Raised by :mod:`repro.server.wire` when an answer contains a value
    the JSON encoding cannot represent, or when an incoming payload is
    malformed (bad tag, broken path alternation, wrong shape).
    """
