"""Bounded in-memory retention for finished traces.

Recording every trace forever is a memory leak; recording none makes
the tracer useless. :class:`TraceStore` keeps two ring buffers:

- ``recent`` — the last *capacity* sampled traces (deterministic head
  sampling: every ``sample_every``-th root span is kept, so retention
  is reproducible rather than probabilistic);
- ``slow`` — the last *slow_capacity* traces over the latency
  threshold, kept regardless of sampling.

Error traces and *forced* traces (the client sent ``X-Trace-Id``,
explicitly asking to be traced) always land in ``recent`` — slow and
broken requests are exactly the ones worth keeping, and an explicit
trace id is a promise that ``GET /trace?id=…`` will find the tree.

Traces are serialised to plain dicts on record, so the store never
pins live ``Span`` objects (or, transitively, exception strings'
tracebacks) beyond the request.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional

__all__ = ["TraceStore"]


def _has_error(span_dict: dict) -> bool:
    if span_dict.get("error"):
        return True
    return any(_has_error(child) for child in span_dict.get("children", ()))


def _find_fingerprint(span_dict: dict) -> Optional[str]:
    """The first ``fingerprint`` attribute in the tree, depth-first.

    The service layer stamps it on whatever span is ambient at
    evaluate time — the request root locally, a dispatch child behind
    the server's coalescer — so the whole tree is searched.
    """
    found = (span_dict.get("attributes") or {}).get("fingerprint")
    if found is not None:
        return found
    for child in span_dict.get("children", ()):
        found = _find_fingerprint(child)
        if found is not None:
            return found
    return None


class TraceStore:
    """Ring-buffered retention of finished span trees."""

    def __init__(
        self,
        capacity: int = 256,
        *,
        slow_capacity: int = 64,
        slow_threshold_s: float = 0.5,
        sample_every: int = 1,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.slow_threshold_s = slow_threshold_s
        self.sample_every = sample_every
        self._recent: deque[dict] = deque(maxlen=capacity)
        self._slow: deque[dict] = deque(maxlen=slow_capacity)
        #: ``trace_id`` → retained trees bearing it, oldest first. One
        #: list entry per ring occurrence (a slow tree sits in both
        #: rings and must survive in the index until *both* evict it),
        #: so entries are removed by identity, not equality.
        self._index: dict[str, list[dict]] = {}
        self._lock = threading.Lock()
        self._seen = 0
        self._recorded = 0
        self._dropped = 0
        self._slow_recorded = 0
        self._error_recorded = 0

    def record(self, root, *, forced: bool = False) -> Optional[dict]:
        """Consider one finished root span for retention.

        Returns the serialised tree when kept (in either buffer),
        ``None`` when sampled out. A ``fingerprint`` root-span
        attribute (stamped by the service layer's insights recording)
        is lifted to the top of the tree so slow-log entries cross-link
        to ``GET /insights`` without clients digging through
        attributes.
        """
        tree = root.to_dict()
        if tree is None:  # a NullSpan — tracing disabled
            return None
        fingerprint = _find_fingerprint(tree)
        if fingerprint is not None:
            tree["fingerprint"] = fingerprint
        with self._lock:
            self._seen += 1
            slow = tree["duration_s"] >= self.slow_threshold_s
            error = bool(_has_error(tree))
            sampled = (self._seen - 1) % self.sample_every == 0
            keep = forced or error or slow or sampled
            if not keep:
                self._dropped += 1
                return None
            self._recorded += 1
            self._append(self._recent, tree)
            if error:
                self._error_recorded += 1
            if slow:
                self._slow_recorded += 1
                self._append(self._slow, tree)
            return tree

    def _append(self, ring: deque, tree: dict) -> None:
        """Append with *explicit* eviction so the index stays exact.

        ``deque(maxlen=…)`` would silently drop the oldest entry,
        leaving a dangling index reference — evict by hand instead.
        """
        if ring.maxlen is not None and len(ring) == ring.maxlen:
            self._unindex(ring.popleft())
        ring.append(tree)
        trace_id = tree.get("trace_id")
        if trace_id is not None:
            self._index.setdefault(trace_id, []).append(tree)

    def _unindex(self, tree: dict) -> None:
        trace_id = tree.get("trace_id")
        bucket = self._index.get(trace_id)
        if bucket is None:
            return
        # Remove ONE occurrence by identity: the same tree object may
        # legitimately appear once per ring it was retained in.
        for position, candidate in enumerate(bucket):
            if candidate is tree:
                del bucket[position]
                break
        if not bucket:
            del self._index[trace_id]

    # -- retrieval ------------------------------------------------------

    def recent(self, limit: Optional[int] = None) -> list[dict]:
        """Most recent first."""
        with self._lock:
            items = list(self._recent)
        items.reverse()
        return items[:limit] if limit is not None else items

    def slow(self, limit: Optional[int] = None) -> list[dict]:
        """Slowest-log entries, most recent first."""
        with self._lock:
            items = list(self._slow)
        items.reverse()
        return items[:limit] if limit is not None else items

    def find(self, trace_id: str) -> Optional[dict]:
        """The retained tree for ``trace_id`` (newest match wins).

        O(1) via the trace-id index — a slow-log entry stays findable
        long after the recent ring has cycled past it.
        """
        with self._lock:
            bucket = self._index.get(trace_id)
            return bucket[-1] if bucket else None

    def counters(self) -> dict[str, int]:
        """Retention counters for the /metrics surface."""
        with self._lock:
            return {
                "seen": self._seen,
                "recorded": self._recorded,
                "dropped": self._dropped,
                "slow": self._slow_recorded,
                "errors": self._error_recorded,
                "retained": len(self._recent),
                "retained_slow": len(self._slow),
            }

    def clear(self) -> None:
        with self._lock:
            self._recent.clear()
            self._slow.clear()
            self._index.clear()

    def __repr__(self) -> str:
        return (
            f"TraceStore(retained={len(self._recent)}, "
            f"slow={len(self._slow)}, seen={self._seen})"
        )
