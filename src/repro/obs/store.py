"""Bounded in-memory retention for finished traces.

Recording every trace forever is a memory leak; recording none makes
the tracer useless. :class:`TraceStore` keeps two ring buffers:

- ``recent`` — the last *capacity* sampled traces (deterministic head
  sampling: every ``sample_every``-th root span is kept, so retention
  is reproducible rather than probabilistic);
- ``slow`` — the last *slow_capacity* traces over the latency
  threshold, kept regardless of sampling.

Error traces and *forced* traces (the client sent ``X-Trace-Id``,
explicitly asking to be traced) always land in ``recent`` — slow and
broken requests are exactly the ones worth keeping, and an explicit
trace id is a promise that ``GET /trace?id=…`` will find the tree.

Traces are serialised to plain dicts on record, so the store never
pins live ``Span`` objects (or, transitively, exception strings'
tracebacks) beyond the request.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional

__all__ = ["TraceStore"]


def _has_error(span_dict: dict) -> bool:
    if span_dict.get("error"):
        return True
    return any(_has_error(child) for child in span_dict.get("children", ()))


class TraceStore:
    """Ring-buffered retention of finished span trees."""

    def __init__(
        self,
        capacity: int = 256,
        *,
        slow_capacity: int = 64,
        slow_threshold_s: float = 0.5,
        sample_every: int = 1,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.slow_threshold_s = slow_threshold_s
        self.sample_every = sample_every
        self._recent: deque[dict] = deque(maxlen=capacity)
        self._slow: deque[dict] = deque(maxlen=slow_capacity)
        self._lock = threading.Lock()
        self._seen = 0
        self._recorded = 0
        self._dropped = 0
        self._slow_recorded = 0
        self._error_recorded = 0

    def record(self, root, *, forced: bool = False) -> Optional[dict]:
        """Consider one finished root span for retention.

        Returns the serialised tree when kept (in either buffer),
        ``None`` when sampled out.
        """
        tree = root.to_dict()
        if tree is None:  # a NullSpan — tracing disabled
            return None
        with self._lock:
            self._seen += 1
            slow = tree["duration_s"] >= self.slow_threshold_s
            error = bool(_has_error(tree))
            sampled = (self._seen - 1) % self.sample_every == 0
            keep = forced or error or slow or sampled
            if not keep:
                self._dropped += 1
                return None
            self._recorded += 1
            self._recent.append(tree)
            if error:
                self._error_recorded += 1
            if slow:
                self._slow_recorded += 1
                self._slow.append(tree)
            return tree

    # -- retrieval ------------------------------------------------------

    def recent(self, limit: Optional[int] = None) -> list[dict]:
        """Most recent first."""
        with self._lock:
            items = list(self._recent)
        items.reverse()
        return items[:limit] if limit is not None else items

    def slow(self, limit: Optional[int] = None) -> list[dict]:
        """Slowest-log entries, most recent first."""
        with self._lock:
            items = list(self._slow)
        items.reverse()
        return items[:limit] if limit is not None else items

    def find(self, trace_id: str) -> Optional[dict]:
        """The retained tree for ``trace_id`` (newest match wins)."""
        with self._lock:
            for tree in reversed(self._recent):
                if tree.get("trace_id") == trace_id:
                    return tree
            for tree in reversed(self._slow):
                if tree.get("trace_id") == trace_id:
                    return tree
        return None

    def counters(self) -> dict[str, int]:
        """Retention counters for the /metrics surface."""
        with self._lock:
            return {
                "seen": self._seen,
                "recorded": self._recorded,
                "dropped": self._dropped,
                "slow": self._slow_recorded,
                "errors": self._error_recorded,
                "retained": len(self._recent),
                "retained_slow": len(self._slow),
            }

    def clear(self) -> None:
        with self._lock:
            self._recent.clear()
            self._slow.clear()

    def __repr__(self) -> str:
        return (
            f"TraceStore(retained={len(self._recent)}, "
            f"slow={len(self._slow)}, seen={self._seen})"
        )
