"""Per-request deadline propagation.

A client may bound how long it is willing to wait (``deadline_ms`` on
``POST /query``). The server anchors an absolute ``time.monotonic``
deadline on the request context; the engine's long-running loops call
:func:`check_deadline` at round boundaries and abort with
:class:`~repro.errors.DeadlineExceededError` — which the server maps
to HTTP 504 with the partial span tree still recorded.

Deadlines nest by taking the minimum: an inner scope can only tighten
the budget, never extend it. Crossing a process boundary ships the
*remaining* seconds (monotonic clocks are per-process); the worker
re-anchors on arrival, so queue wait inside the pool is not charged
against the budget — a deliberate, documented slack of one scheduling
hop.
"""

from __future__ import annotations

import time
from contextvars import ContextVar
from typing import Optional

from repro.errors import DeadlineExceededError

__all__ = ["deadline_scope", "remaining", "check_deadline"]

#: Absolute ``time.monotonic()`` deadline, or ``None`` when unbounded.
_DEADLINE: "ContextVar[Optional[float]]" = ContextVar(
    "repro_obs_deadline", default=None
)


class deadline_scope:
    """``with deadline_scope(seconds):`` — bound the scope to at most
    ``seconds`` from now (no-op when ``seconds`` is ``None``; nested
    scopes keep the tighter deadline)."""

    __slots__ = ("_seconds", "_token")

    def __init__(self, seconds: Optional[float]):
        self._seconds = seconds
        self._token = None

    def __enter__(self):
        if self._seconds is not None:
            candidate = time.monotonic() + self._seconds
            outer = _DEADLINE.get()
            if outer is None or candidate < outer:
                self._token = _DEADLINE.set(candidate)
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._token is not None:
            _DEADLINE.reset(self._token)
        return False


def remaining() -> Optional[float]:
    """Seconds left before the ambient deadline (``None`` when
    unbounded; can be negative once expired)."""
    deadline = _DEADLINE.get()
    if deadline is None:
        return None
    return deadline - time.monotonic()


def check_deadline() -> None:
    """Raise :class:`DeadlineExceededError` if the ambient deadline has
    passed. Cheap enough for loop boundaries: one contextvar get and,
    only when a deadline exists, one clock read."""
    deadline = _DEADLINE.get()
    if deadline is not None and time.monotonic() >= deadline:
        raise DeadlineExceededError("request deadline exceeded")
