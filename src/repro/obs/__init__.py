"""Observability: request tracing, engine work counters, deadlines.

The serving stack (HTTP front end → coalescer → service/cluster →
planner → engine) reports *where a request's time went* through this
package:

- :mod:`repro.obs.trace` — ``Tracer``/``Span`` with contextvars
  propagation across asyncio, thread pools, and (via explicit
  carriers) process pools;
- :mod:`repro.obs.counters` — ``EvalCounters``, the engine's in-line
  work accounting (NFA states, join rows, deepening rounds, …);
- :mod:`repro.obs.deadline` — per-request deadline propagation into
  the engine's long-running loops;
- :mod:`repro.obs.store` — the bounded ``TraceStore`` ring buffer
  behind ``GET /trace``;
- :mod:`repro.obs.metrics` — Prometheus text exposition behind
  ``GET /metrics``;
- :mod:`repro.obs.insights` — fingerprint-aggregated workload
  profiles with planner estimate-vs-actual accounting behind
  ``GET /insights``.

Stdlib-only, and importable without the serving stack (its only
intra-repo dependency is :mod:`repro.errors`).
"""

from repro.obs.counters import EvalCounters, active_counters, use_counters
from repro.obs.deadline import check_deadline, deadline_scope, remaining
from repro.obs.store import TraceStore
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    current_carrier,
    current_span,
    remote_span,
    span,
)

# Imported last: insights lazy-imports gpc/service modules that
# themselves import repro.obs, so it must not run during the eager
# imports above.
from repro.obs.insights import (
    InsightsRegistry,
    PlanQuality,
    QueryInsight,
    canonical_query,
    query_fingerprint,
)

__all__ = [
    "InsightsRegistry",
    "PlanQuality",
    "QueryInsight",
    "canonical_query",
    "query_fingerprint",
    "EvalCounters",
    "active_counters",
    "use_counters",
    "check_deadline",
    "deadline_scope",
    "remaining",
    "TraceStore",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "current_carrier",
    "current_span",
    "remote_span",
    "span",
]
