"""Request tracing: spans, context propagation, and span carriers.

A *trace* is a tree of :class:`Span`\\ s describing where one request's
time went — parse, coalesce wait, cache probe, plan, evaluate, and (for
the cluster) one span per shard. The design goals, in order:

- **zero cost when off** — every instrumentation point in the serving
  stack calls :func:`span`, which is a single ``contextvars`` lookup
  plus a ``None`` check when no trace is active. No timestamps, no
  allocation of real spans, no locks;
- **propagation across execution boundaries** — the active span lives
  in a :class:`~contextvars.ContextVar`, which asyncio tasks inherit
  automatically. Thread pools do not: callers capture
  :func:`contextvars.copy_context` per work item and run the item
  inside it (see :meth:`GraphService.evaluate_batch`). Process pools
  cannot share objects at all, so spans cross that boundary as an
  explicit *carrier* (``(trace_id, parent_span_id)``) in the shard
  payload: the worker opens a detached span via :func:`remote_span`,
  serialises it with :meth:`Span.to_dict`, ships the dict back in the
  :class:`~repro.cluster.backends.ShardOutcome`, and the gatherer
  re-parents it with :meth:`Span.adopt`;
- **bounded memory** — finished traces are serialised to plain dicts
  and ring-buffered by :class:`~repro.obs.store.TraceStore`.

Span timestamps are ``time.perf_counter`` based; serialised spans carry
``offset_s`` (start relative to the serialisation root) and
``duration_s``. Spans adopted from another process keep their own
worker-local offsets (clocks are not comparable across processes);
their durations remain meaningful.
"""

from __future__ import annotations

import time
import uuid
from contextvars import ContextVar
from typing import Any, Optional

__all__ = [
    "Span",
    "NULL_SPAN",
    "Tracer",
    "span",
    "current_span",
    "current_carrier",
    "remote_span",
]


#: The active span for the current task/thread context (``None`` when
#: no trace is in progress — the disabled fast path).
_CURRENT: "ContextVar[Optional[Span]]" = ContextVar(
    "repro_obs_span", default=None
)


def _new_id(bits: int = 64) -> str:
    """A random hex id (collision-safe across processes)."""
    return uuid.uuid4().hex[: bits // 4]


class Span:
    """One timed stage of a request, with attributes and children.

    Spans form a tree per trace. Children are appended under the GIL
    (list.append is atomic), so concurrent batch threads may add
    children to a shared parent; the tree is only serialised after the
    request future resolves, when every child has ended.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "attributes",
        "children",
        "error",
        "_start",
        "_end",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        parent_id: Optional[str] = None,
        attributes: Optional[dict] = None,
        *,
        start: Optional[float] = None,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.attributes: dict[str, Any] = dict(attributes) if attributes else {}
        #: Finished children: Span objects (same process) or already
        #: serialised dicts adopted from a worker process.
        self.children: list = []
        self.error: Optional[str] = None
        self._start = time.perf_counter() if start is None else start
        self._end: Optional[float] = None

    def __bool__(self) -> bool:
        return True

    # -- construction ---------------------------------------------------

    def child(self, name: str, attributes: Optional[dict] = None) -> "Span":
        """Open a child span (caller must :meth:`end` it)."""
        child = Span(name, self.trace_id, self.span_id, attributes)
        self.children.append(child)
        return child

    def child_timed(
        self,
        name: str,
        start: float,
        end: float,
        attributes: Optional[dict] = None,
    ) -> "Span":
        """Attach an already-finished child with explicit
        ``perf_counter`` bounds (e.g. the coalesce wait, whose start
        predates the dispatch code that knows its duration)."""
        child = Span(name, self.trace_id, self.span_id, attributes, start=start)
        child._end = end
        self.children.append(child)
        return child

    def adopt(self, span_dict: Optional[dict]) -> None:
        """Re-parent a serialised span (from a worker process or pool
        thread) under this span: its ``trace_id``/``parent_id`` are
        rewritten to this trace, its subtree kept intact."""
        if not span_dict:
            return
        adopted = dict(span_dict)
        adopted["trace_id"] = self.trace_id
        adopted["parent_id"] = self.span_id
        self.children.append(adopted)

    # -- recording ------------------------------------------------------

    def set_attr(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def set_attrs(self, mapping: dict) -> None:
        self.attributes.update(mapping)

    def record_error(self, exc: BaseException) -> None:
        self.error = f"{type(exc).__name__}: {exc}"

    def set_error(self, message: str) -> None:
        self.error = message

    def end(self) -> None:
        if self._end is None:
            self._end = time.perf_counter()

    @property
    def duration_s(self) -> float:
        end = self._end if self._end is not None else time.perf_counter()
        return max(0.0, end - self._start)

    # -- serialisation --------------------------------------------------

    def to_dict(self, base: Optional[float] = None) -> dict:
        """The span subtree as plain JSON-serialisable dicts.

        ``offset_s`` is relative to ``base`` (defaults to this span's
        own start, so a root serialises at offset 0.0). Dict children
        adopted from other processes are included as-is.
        """
        if base is None:
            base = self._start
        children = []
        for child in self.children:
            if isinstance(child, dict):
                children.append(child)
            else:
                children.append(child.to_dict(base))
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "offset_s": max(0.0, self._start - base),
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
            "error": self.error,
            "children": children,
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, trace={self.trace_id}, "
            f"id={self.span_id}, children={len(self.children)})"
        )


class _NullSpan:
    """The no-op span: every recording method does nothing, truthiness
    is ``False`` so instrumentation can cheaply skip attribute work."""

    __slots__ = ()

    trace_id = None
    span_id = None
    parent_id = None
    name = "null"
    error = None
    attributes: dict = {}
    children: list = []
    duration_s = 0.0

    def __bool__(self) -> bool:
        return False

    def child(self, name, attributes=None):
        return self

    def child_timed(self, name, start, end, attributes=None):
        return self

    def adopt(self, span_dict) -> None:
        pass

    def set_attr(self, key, value) -> None:
        pass

    def set_attrs(self, mapping) -> None:
        pass

    def record_error(self, exc) -> None:
        pass

    def set_error(self, message) -> None:
        pass

    def end(self) -> None:
        pass

    def to_dict(self, base=None):
        return None

    def __repr__(self) -> str:
        return "NullSpan()"


NULL_SPAN = _NullSpan()


def current_span() -> "Span | _NullSpan | None":
    """The active span, or ``None`` when no trace is in progress."""
    return _CURRENT.get()


def current_carrier() -> Optional[tuple[str, str]]:
    """A ``(trace_id, span_id)`` carrier for crossing executor
    boundaries, or ``None`` when no trace is active."""
    active = _CURRENT.get()
    if active is None or not active:
        return None
    return (active.trace_id, active.span_id)


class _SpanScope:
    """``with span("name"):`` — a child of the ambient span, or a
    no-op when no trace is active."""

    __slots__ = ("_name", "_attributes", "_span", "_token")

    def __init__(self, name: str, attributes: Optional[dict]):
        self._name = name
        self._attributes = attributes
        self._span = NULL_SPAN
        self._token = None

    def __enter__(self):
        parent = _CURRENT.get()
        if parent is None or not parent:
            return NULL_SPAN
        child = parent.child(self._name, self._attributes)
        self._span = child
        self._token = _CURRENT.set(child)
        return child

    def __exit__(self, exc_type, exc, tb):
        if self._token is not None:
            if exc is not None:
                self._span.record_error(exc)
            self._span.end()
            _CURRENT.reset(self._token)
        return False


def span(name: str, **attributes: Any) -> _SpanScope:
    """Open a child span of the ambient one (no-op without a trace)."""
    return _SpanScope(name, attributes or None)


class _RemoteScope:
    """``with remote_span(...)``: a detached span recreated from a
    carrier on the far side of an executor boundary. The span becomes
    the ambient one for the scope (so engine spans nest under it);
    the caller ships ``scope_result.to_dict()`` home for adoption."""

    __slots__ = ("_span", "_token")

    def __init__(self, name: str, carrier, attributes: Optional[dict]):
        if carrier is None:
            self._span = NULL_SPAN
        else:
            trace_id, parent_id = carrier
            self._span = Span(name, trace_id, parent_id, attributes)
        self._token = None

    def __enter__(self):
        if self._span is not NULL_SPAN:
            self._token = _CURRENT.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb):
        if self._token is not None:
            if exc is not None:
                self._span.record_error(exc)
            self._span.end()
            _CURRENT.reset(self._token)
        return False


def remote_span(
    name: str, carrier: Optional[tuple[str, str]], **attributes: Any
) -> _RemoteScope:
    """Recreate the trace context from ``carrier`` in a worker
    (no-op when the carrier is ``None`` — tracing was off)."""
    return _RemoteScope(name, carrier, attributes or None)


class _TraceScope:
    """``with tracer.trace("request"):`` — opens a root span, makes it
    ambient, and records the finished tree into the tracer's store."""

    __slots__ = ("_tracer", "_span", "_token", "_forced")

    def __init__(self, tracer: "Tracer", name: str, trace_id, attributes):
        if not tracer.enabled:
            self._span = NULL_SPAN
        else:
            self._span = Span(name, trace_id or _new_id(), None, attributes)
        self._tracer = tracer
        self._token = None
        #: A client-supplied trace id is an explicit request to trace:
        #: it bypasses head sampling in the store.
        self._forced = trace_id is not None

    def __enter__(self):
        if self._span is not NULL_SPAN:
            self._token = _CURRENT.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb):
        if self._token is not None:
            if exc is not None:
                self._span.record_error(exc)
            self._span.end()
            _CURRENT.reset(self._token)
            self._tracer.store.record(self._span, forced=self._forced)
        return False


class Tracer:
    """Creates root spans and records finished traces into a
    :class:`~repro.obs.store.TraceStore`.

    ``enabled=False`` makes :meth:`trace` yield the null span, which in
    turn makes every nested :func:`span` call in the serving stack a
    no-op — the disabled-overhead guarantee the tracing benchmark
    gates.
    """

    def __init__(self, store=None, *, enabled: bool = True):
        from repro.obs.store import TraceStore

        self.store = store if store is not None else TraceStore()
        self.enabled = enabled

    def trace(
        self,
        name: str,
        *,
        trace_id: Optional[str] = None,
        **attributes: Any,
    ) -> _TraceScope:
        """Open a root span; pass ``trace_id`` to honour a client
        supplied id (forces the trace into the store)."""
        return _TraceScope(self, name, trace_id, attributes or None)

    def __repr__(self) -> str:
        return f"Tracer(enabled={self.enabled}, store={self.store!r})"
