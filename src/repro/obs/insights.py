"""Fingerprint-aggregated workload insights.

Per-request observability (spans, counters) answers "where did *this*
request's time go"; at serving scale the operational unit is the
*query shape*. This module aggregates every evaluation under its
**query fingerprint** — the canonical rendering of the query
(:func:`repro.gpc.pretty.pretty`) with constants bucketed, hashed —
so forty query shapes stay forty registry entries however many
millions of calls and distinct constant bindings arrive.

Each :class:`QueryInsight` keeps rolling aggregates (calls, errors,
timeouts, cache outcomes, answer rows, a latency reservoir plus
fixed-bucket histogram, merged engine counters) and a
:class:`PlanQuality` record comparing the planner's pre-execution
cardinality estimates (:func:`repro.gpc.planner.estimate_plan`)
against the observed actuals — answer counts, hash-join build/probe
rows, NFA expansions — surfacing a per-fingerprint *misestimate
factor*: the planner's validation loop, closed per workload shape.

:class:`InsightsRegistry` is thread-safe and bounded (LRU eviction
past ``capacity`` fingerprints, an LRU memo for the query →
fingerprint mapping) and serves top-K views by total time, calls or
misestimation for ``GET /insights`` and the ``/metrics`` labeled
series.

The heavyweight imports (parser/pretty, the latency recorder) are
deferred to first use so importing :mod:`repro.obs` stays cheap and
cycle-free.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict, deque
from typing import Optional

from repro.obs.counters import EvalCounters

__all__ = [
    "InsightsRegistry",
    "QueryInsight",
    "PlanQuality",
    "query_fingerprint",
    "canonical_query",
]

#: The sentinel every condition constant is replaced with before
#: rendering, so ``x.k = 1`` and ``x.k = 'foo'`` share a fingerprint.
CONSTANT_BUCKET = "?"

#: The sort keys :meth:`InsightsRegistry.top` accepts.
TOP_SORTS = ("total_time", "calls", "misestimate", "errors")


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------


def _canonical_condition(condition):
    from repro.gpc.conditions_ast import And, Not, Or, PropertyEqualsConst

    if isinstance(condition, PropertyEqualsConst):
        return PropertyEqualsConst(
            condition.variable, condition.key, CONSTANT_BUCKET
        )
    if isinstance(condition, And):
        return And(
            _canonical_condition(condition.left),
            _canonical_condition(condition.right),
        )
    if isinstance(condition, Or):
        return Or(
            _canonical_condition(condition.left),
            _canonical_condition(condition.right),
        )
    if isinstance(condition, Not):
        return Not(_canonical_condition(condition.inner))
    # PropertyEqualsProperty and extension conditions carry no
    # bucketable constants in the core grammar.
    return condition


def _canonical_pattern(pattern):
    from repro.gpc import ast

    if isinstance(pattern, ast.Conditioned):
        return ast.Conditioned(
            _canonical_pattern(pattern.pattern),
            _canonical_condition(pattern.condition),
        )
    if isinstance(pattern, ast.Union):
        return ast.Union(
            _canonical_pattern(pattern.left),
            _canonical_pattern(pattern.right),
        )
    if isinstance(pattern, ast.Concat):
        return ast.Concat(
            _canonical_pattern(pattern.left),
            _canonical_pattern(pattern.right),
        )
    if isinstance(pattern, ast.Repeat):
        return ast.Repeat(
            _canonical_pattern(pattern.pattern), pattern.lower, pattern.upper
        )
    return pattern


def _canonical_expression(query):
    from repro.gpc import ast

    if isinstance(query, ast.Join):
        return ast.Join(
            _canonical_expression(query.left),
            _canonical_expression(query.right),
        )
    if isinstance(query, ast.PatternQuery):
        return ast.PatternQuery(
            query.restrictor, _canonical_pattern(query.pattern), query.name
        )
    return _canonical_pattern(query)


def canonical_query(query) -> str:
    """The canonical text of ``query`` (str or AST): parsed, constants
    bucketed to ``'?'``, re-rendered via :func:`repro.gpc.pretty.pretty`.

    Whitespace and formatting variants of the same query normalise to
    one string; queries differing only in condition constants collapse
    together. Unrenderable inputs (extension constructs the printer
    rejects) fall back to ``repr`` of the bucketed AST, keeping
    fingerprinting total.
    """
    from repro.gpc.parser import parse_query
    from repro.gpc.pretty import pretty

    if isinstance(query, str):
        query = parse_query(query)
    bucketed = _canonical_expression(query)
    try:
        return pretty(bucketed)
    except TypeError:
        return repr(bucketed)


def query_fingerprint(query) -> tuple[str, str]:
    """``(fingerprint, canonical_text)`` for a query (str or AST).

    The fingerprint is a short stable hash of the canonical text; two
    queries share it iff they share the canonical form.
    """
    canonical = canonical_query(query)
    fingerprint = hashlib.blake2b(
        canonical.encode("utf-8"), digest_size=8
    ).hexdigest()
    return fingerprint, canonical


def _symmetric_ratio(estimated: float, observed: float) -> float:
    """How far apart two counts are, as a factor >= 1 (1.0 = exact).

    Both sides are floored at 1 so zero-answer queries do not divide
    by zero and small absolute errors near zero stay small factors.
    """
    a = max(float(estimated), 1.0)
    b = max(float(observed), 1.0)
    return a / b if a >= b else b / a


# ---------------------------------------------------------------------------
# Per-fingerprint aggregates
# ---------------------------------------------------------------------------


class PlanQuality:
    """Planner estimates vs observed actuals for one fingerprint.

    ``samples`` counts the evaluations that carried a
    :class:`~repro.gpc.planner.PlanEstimates` (cache hits and errors
    do not — no execution happened to compare against).
    """

    __slots__ = (
        "samples",
        "estimated_answers",
        "observed_answers",
        "estimated_join_build_rows",
        "observed_join_build_rows",
        "estimated_join_probe_rows",
        "observed_join_probe_rows",
        "observed_nfa_states_expanded",
        "worst_factor",
    )

    def __init__(self):
        self.samples = 0
        self.estimated_answers = 0.0
        self.observed_answers = 0
        self.estimated_join_build_rows = 0.0
        self.observed_join_build_rows = 0
        self.estimated_join_probe_rows = 0.0
        self.observed_join_probe_rows = 0
        self.observed_nfa_states_expanded = 0
        self.worst_factor = 1.0

    def observe(self, estimates, answers: int, counters) -> None:
        self.samples += 1
        self.estimated_answers += estimates.cardinality
        self.observed_answers += answers
        self.estimated_join_build_rows += estimates.join_build_rows
        self.estimated_join_probe_rows += estimates.join_probe_rows
        if counters is not None:
            self.observed_join_build_rows += counters.join_build_rows
            self.observed_join_probe_rows += counters.join_probe_rows
            self.observed_nfa_states_expanded += counters.nfa_states_expanded
        self.worst_factor = max(
            self.worst_factor,
            _symmetric_ratio(estimates.cardinality, answers),
        )

    @property
    def misestimate_factor(self) -> float:
        """How far the planner's mean answer estimate is from the mean
        observed answer count, as a factor >= 1 (1.0 = spot on)."""
        if not self.samples:
            return 1.0
        return _symmetric_ratio(
            self.estimated_answers / self.samples,
            self.observed_answers / self.samples,
        )

    def as_dict(self) -> dict[str, object]:
        samples = self.samples
        return {
            "samples": samples,
            "estimated_answers_mean": (
                self.estimated_answers / samples if samples else 0.0
            ),
            "observed_answers_mean": (
                self.observed_answers / samples if samples else 0.0
            ),
            "misestimate_factor": self.misestimate_factor,
            "worst_factor": self.worst_factor,
            "estimated_join_build_rows": self.estimated_join_build_rows,
            "observed_join_build_rows": self.observed_join_build_rows,
            "estimated_join_probe_rows": self.estimated_join_probe_rows,
            "observed_join_probe_rows": self.observed_join_probe_rows,
            "observed_nfa_states_expanded": self.observed_nfa_states_expanded,
        }


class QueryInsight:
    """Rolling aggregates for one query fingerprint."""

    __slots__ = (
        "fingerprint",
        "query",
        "calls",
        "errors",
        "timeouts",
        "answers_total",
        "total_time_s",
        "cache_hits",
        "cache_restamps",
        "cache_misses",
        "cache_invalidations",
        "cache_bypasses",
        "latency",
        "counters",
        "plan",
        "trace_ids",
    )

    def __init__(
        self,
        fingerprint: str,
        query: str,
        *,
        latency_capacity: int = 256,
        trace_id_capacity: int = 4,
    ):
        # The only place the canonical text is stored: entries key the
        # registry by fingerprint, so raw text is never stored twice.
        from repro.service.stats import LatencyRecorder

        self.fingerprint = fingerprint
        self.query = query
        self.calls = 0
        self.errors = 0
        self.timeouts = 0
        self.answers_total = 0
        self.total_time_s = 0.0
        self.cache_hits = 0
        self.cache_restamps = 0
        self.cache_misses = 0
        self.cache_invalidations = 0
        self.cache_bypasses = 0
        self.latency = LatencyRecorder(capacity=latency_capacity)
        self.counters = EvalCounters()
        self.plan = PlanQuality()
        #: The most recent recorded trace ids, for /trace cross-links.
        self.trace_ids: deque[str] = deque(maxlen=trace_id_capacity)

    def as_dict(self) -> dict[str, object]:
        calls = self.calls
        return {
            "fingerprint": self.fingerprint,
            "query": self.query,
            "calls": calls,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "answers_total": self.answers_total,
            "answers_mean": self.answers_total / calls if calls else 0.0,
            "total_time_s": self.total_time_s,
            "cache": {
                "hits": self.cache_hits,
                "restamps": self.cache_restamps,
                "misses": self.cache_misses,
                "invalidations": self.cache_invalidations,
                "bypasses": self.cache_bypasses,
            },
            "latency": self.latency.summary(),
            "latency_histogram": self.latency.histogram(),
            "engine": self.counters.as_dict(),
            "plan": self.plan.as_dict(),
            "recent_trace_ids": list(self.trace_ids),
        }

    def metrics_summary(self) -> dict[str, object]:
        """The flat numeric slice rendered as ``/metrics`` labeled
        series (one bounded line set per top-K fingerprint)."""
        return {
            "calls": self.calls,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "answers_total": self.answers_total,
            "total_time_s": self.total_time_s,
            "cache_hits": self.cache_hits,
            "misestimate_factor": self.plan.misestimate_factor,
        }

    def __repr__(self) -> str:
        return (
            f"QueryInsight({self.fingerprint}, calls={self.calls}, "
            f"total_time_s={self.total_time_s:.4f})"
        )


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

_SORT_KEYS = {
    "total_time": lambda e: (e.total_time_s, e.calls),
    "calls": lambda e: (e.calls, e.total_time_s),
    "misestimate": lambda e: (e.plan.misestimate_factor, e.total_time_s),
    "errors": lambda e: (e.errors + e.timeouts, e.total_time_s),
}

#: Outcome vocabulary for the ``cache=`` argument of ``record``.
_CACHE_OUTCOMES = ("hit", "restamp", "miss", "invalidated", "bypass")


class InsightsRegistry:
    """Thread-safe, bounded per-fingerprint workload aggregates.

    ``capacity`` bounds the fingerprint set (least-recently-*updated*
    entries evict first); ``fingerprint_cache_size`` bounds the memo
    from query object to ``(fingerprint, canonical)`` so the hot path
    never re-parses a repeated query. ``enabled=False`` turns
    :meth:`record` into an early-returning no-op, which is what the
    overhead benchmark compares against.
    """

    def __init__(
        self,
        capacity: int = 512,
        *,
        enabled: bool = True,
        fingerprint_cache_size: int = 1024,
        latency_capacity: int = 256,
        trace_id_capacity: int = 4,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.enabled = enabled
        self.capacity = capacity
        self.fingerprint_cache_size = fingerprint_cache_size
        self._latency_capacity = latency_capacity
        self._trace_id_capacity = trace_id_capacity
        self._entries: OrderedDict[str, QueryInsight] = OrderedDict()
        self._fingerprints: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._records = 0
        self._evictions = 0

    # -- fingerprinting -------------------------------------------------

    def fingerprint(self, query) -> tuple[str, str]:
        """Memoised ``(fingerprint, canonical_text)`` for ``query``."""
        with self._lock:
            found = self._fingerprints.get(query)
            if found is not None:
                self._fingerprints.move_to_end(query)
                return found
        computed = query_fingerprint(query)
        with self._lock:
            self._fingerprints[query] = computed
            while len(self._fingerprints) > self.fingerprint_cache_size:
                self._fingerprints.popitem(last=False)
        return computed

    # -- recording ------------------------------------------------------

    def record(
        self,
        query,
        *,
        latency_s: float,
        answers: Optional[int] = None,
        cache: Optional[str] = None,
        counters: Optional[EvalCounters] = None,
        estimates=None,
        error: bool = False,
        timeout: bool = False,
        trace_id: Optional[str] = None,
    ) -> Optional[str]:
        """Fold one evaluation into its fingerprint's aggregates.

        ``cache`` is one of ``hit``/``restamp``/``miss``/
        ``invalidated``/``bypass`` (or ``None`` to skip cache
        accounting); ``estimates`` is the
        :class:`~repro.gpc.planner.PlanEstimates` stamped at plan time,
        compared against ``answers`` and ``counters``. Returns the
        fingerprint (for span stamping), or ``None`` when disabled.
        """
        if not self.enabled:
            return None
        fingerprint, canonical = self.fingerprint(query)
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                entry = QueryInsight(
                    fingerprint,
                    canonical,
                    latency_capacity=self._latency_capacity,
                    trace_id_capacity=self._trace_id_capacity,
                )
                self._entries[fingerprint] = entry
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self._evictions += 1
            else:
                self._entries.move_to_end(fingerprint)
            self._records += 1
            entry.calls += 1
            entry.total_time_s += latency_s
            if error:
                entry.errors += 1
            if timeout:
                entry.timeouts += 1
            if answers is not None:
                entry.answers_total += answers
            if cache == "hit":
                entry.cache_hits += 1
            elif cache == "restamp":
                # A restamp is a hit that survived interleaving
                # mutations; count it in both, like CacheStats does.
                entry.cache_hits += 1
                entry.cache_restamps += 1
            elif cache == "miss":
                entry.cache_misses += 1
            elif cache == "invalidated":
                entry.cache_misses += 1
                entry.cache_invalidations += 1
            elif cache == "bypass":
                entry.cache_bypasses += 1
            if trace_id is not None and (
                not entry.trace_ids or entry.trace_ids[-1] != trace_id
            ):
                entry.trace_ids.append(trace_id)
            if estimates is not None and answers is not None and not error:
                entry.plan.observe(estimates, answers, counters)
        # Outside the registry lock: both have their own locking.
        entry.latency.record(latency_s)
        if counters is not None:
            entry.counters.merge(counters)
        return fingerprint

    # -- views ----------------------------------------------------------

    def top(self, sort: str = "total_time", limit: int = 10) -> list[dict]:
        """The top-``limit`` fingerprints by ``sort``, as dicts."""
        key = _SORT_KEYS.get(sort)
        if key is None:
            raise ValueError(
                f"unknown sort {sort!r}; expected one of {TOP_SORTS}"
            )
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        with self._lock:
            entries = list(self._entries.values())
        entries.sort(key=key, reverse=True)
        return [entry.as_dict() for entry in entries[:limit]]

    def labeled_series(self, limit: int = 10) -> dict[str, dict]:
        """Per-fingerprint flat numeric summaries for the ``/metrics``
        labeled series, top-``limit`` by total time (bounded so the
        exposition never grows with the fingerprint population)."""
        with self._lock:
            entries = list(self._entries.values())
        entries.sort(key=_SORT_KEYS["total_time"], reverse=True)
        return {
            entry.fingerprint: entry.metrics_summary()
            for entry in entries[:limit]
        }

    def get(self, fingerprint: str) -> Optional[QueryInsight]:
        """The live entry for ``fingerprint`` (no LRU touch), if any."""
        with self._lock:
            return self._entries.get(fingerprint)

    def counters(self) -> dict[str, object]:
        """Registry-level accounting for the stats/metrics surfaces."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "capacity": self.capacity,
                "fingerprints": len(self._entries),
                "records": self._records,
                "evictions": self._evictions,
            }

    def clear(self) -> None:
        """Drop every entry and memo (capacity and flags are kept)."""
        with self._lock:
            self._entries.clear()
            self._fingerprints.clear()
            self._records = 0
            self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"InsightsRegistry(enabled={self.enabled}, "
            f"fingerprints={len(self)}, records={self._records})"
        )
