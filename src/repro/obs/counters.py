"""Engine work counters: *what* the evaluator did, not just how long.

Latency says a query was slow; :class:`EvalCounters` says why — the
register NFA expanded two million states, or the deepening loop ran
eleven rounds, or a join probed 40k rows. The engine fills one
instance in-line per evaluation through the ``active_counters()``
ambient accessor (a :class:`~contextvars.ContextVar`, so concurrent
evaluations on the service executor never share a struct).

Counters are *always on*: the increments are local-int adds on an
instance the evaluating thread owns exclusively, so there is no lock
and no branch on a tracing flag inside the hot loops. The service
layer merges each per-evaluation struct into its long-lived
``stats.engine`` aggregate (under a lock) and, when a trace is active,
attaches the per-evaluation snapshot as span attributes.
"""

from __future__ import annotations

import threading
from contextvars import ContextVar
from dataclasses import dataclass, fields
from typing import Optional, Union

__all__ = ["EvalCounters", "active_counters", "use_counters"]


@dataclass
class EvalCounters:
    """Work done by one evaluation (or aggregated over many).

    Field meanings:

    - ``nfa_states_expanded`` — configurations popped from the 0-1 BFS
      queue in ``shortest_pair_lengths`` (the register-NFA product
      search);
    - ``nfa_transitions`` — relaxations pushed onto that queue (zero-
      cost register/check ops and cost-1 edge steps);
    - ``deepening_rounds`` — iterative-deepening rounds: witness-length
      probes on the NFA route plus bound-doubling rounds of the
      abstraction fallback;
    - ``join_build_rows`` / ``join_probe_rows`` — rows hashed into /
      probed against join tables (nested-loop joins count both sides);
    - ``seeds_pruned`` — start nodes the planner's candidate analysis
      removed before the per-seed shortest search;
    - ``condition_evals`` — top-level ``WHERE`` condition evaluations;
    - ``conditions_pushed`` — condition atoms the compiler pushed out
      of final CHECK ops into bind/step sites of the register program;
    - ``masks_built`` — per-(key, const) / per-label dense bitmask
      indexes materialised (core builds plus per-snapshot overlay
      patches; cache hits do not count);
    - ``mask_probes`` — single-bit bitmask tests performed by the
      dense search in place of full condition/label evaluations;
    - ``dense_fast_lane`` — per-seed shortest searches served by the
      register-free flat-array lane instead of the dict-state search;
    - ``queries_proven_empty`` — evaluations the static analyzer
      short-circuited to the empty answer set without touching the
      snapshot (the query is provably empty on every graph);
    - ``conditions_simplified`` — conditions the analyzer rewrote
      before evaluation (constant-folded, deduplicated, or dropped as
      tautological), counted per evaluation;
    - ``dead_branches_pruned`` — provably-empty union branches the
      analyzer removed before evaluation, counted per evaluation.
    """

    nfa_states_expanded: int = 0
    nfa_transitions: int = 0
    deepening_rounds: int = 0
    join_build_rows: int = 0
    join_probe_rows: int = 0
    seeds_pruned: int = 0
    condition_evals: int = 0
    conditions_pushed: int = 0
    masks_built: int = 0
    mask_probes: int = 0
    dense_fast_lane: int = 0
    queries_proven_empty: int = 0
    conditions_simplified: int = 0
    dead_branches_pruned: int = 0

    def merge(self, other: "Union[EvalCounters, dict, None]") -> None:
        """Add ``other``'s counts into this struct (thread-safe: used
        by the service/cluster stats aggregates, which are shared)."""
        if other is None:
            return
        if isinstance(other, EvalCounters):
            other = other.as_dict()
        with _MERGE_LOCK:
            for name, value in other.items():
                if value and hasattr(self, name):
                    setattr(self, name, getattr(self, name) + int(value))

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def total(self) -> int:
        return sum(self.as_dict().values())

    def render(self) -> str:
        """One human-readable line, zero fields elided (for explain)."""
        parts = [
            f"{name}={value}"
            for name, value in self.as_dict().items()
            if value
        ]
        return ", ".join(parts) if parts else "no work recorded"


#: Merges target shared aggregates (ServiceStats.engine et al.).
_MERGE_LOCK = threading.Lock()

#: The counters struct the current evaluation writes into (``None``
#: outside an evaluation — increments are skipped).
_ACTIVE: "ContextVar[Optional[EvalCounters]]" = ContextVar(
    "repro_obs_counters", default=None
)


def active_counters() -> Optional[EvalCounters]:
    """The current evaluation's counters, or ``None``."""
    return _ACTIVE.get()


class use_counters:
    """``with use_counters(c):`` — make ``c`` the ambient counters
    struct for the scope (one per evaluate call)."""

    __slots__ = ("_counters", "_token")

    def __init__(self, counters: EvalCounters):
        self._counters = counters
        self._token = None

    def __enter__(self) -> EvalCounters:
        self._token = _ACTIVE.set(self._counters)
        return self._counters

    def __exit__(self, exc_type, exc, tb):
        if self._token is not None:
            _ACTIVE.reset(self._token)
        return False
