"""Prometheus text-exposition rendering for the stats surfaces.

The serving layers already aggregate counters into nested ``as_dict``
payloads (:class:`ServerStats`, :class:`ServiceStats`,
:class:`ClusterStats`). This module flattens those payloads into the
`Prometheus text format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ —
``name value`` lines with ``# TYPE`` metadata — without the layers
having to know anything about Prometheus:

- nested mappings flatten with ``_``-joined names
  (``{"result_cache": {"hits": 3}}`` → ``repro_service_result_cache_hits 3``);
- the ``per_worker`` sub-mapping of cluster stats becomes *labeled*
  series (``…{worker="pid-123"}``) instead of per-worker metric names,
  which is the idiomatic Prometheus shape for a dynamic worker set;
- latency summaries are skipped in favour of true fixed-bucket
  histograms rendered from :meth:`LatencyRecorder.histogram`
  (cumulative ``le`` buckets plus ``_sum``/``_count``).

Everything emitted is a gauge-or-counter snapshot; no state is kept
here.
"""

from __future__ import annotations

import re
from typing import Iterable, Mapping, Optional

__all__ = [
    "sanitize",
    "mapping_lines",
    "histogram_lines",
    "labeled_summary_lines",
    "render_metrics",
]

_INVALID = re.compile(r"[^a-zA-Z0-9_]")
_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def sanitize(name: str) -> str:
    """A valid Prometheus metric-name fragment."""
    cleaned = _INVALID.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _escape_label(value: str) -> str:
    return "".join(_LABEL_ESCAPES.get(ch, ch) for ch in value)


def _format_value(value) -> Optional[str]:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    return None


def mapping_lines(prefix: str, mapping: Mapping, *, skip: Iterable[str] = ()) -> list[str]:
    """Flatten a nested mapping of numbers into exposition lines.

    Non-numeric leaves are dropped (strings, lists); ``skip`` names
    sub-keys the caller renders specially (histograms, per-worker
    labels).
    """
    skipped = set(skip)
    lines: list[str] = []
    for key in sorted(mapping):
        if key in skipped:
            continue
        value = mapping[key]
        name = f"{prefix}_{sanitize(str(key))}"
        if isinstance(value, Mapping):
            lines.extend(mapping_lines(name, value, skip=skipped))
            continue
        formatted = _format_value(value)
        if formatted is not None:
            lines.append(f"{name} {formatted}")
    return lines


def histogram_lines(name: str, histogram: Mapping) -> list[str]:
    """Render one histogram payload (``buckets``/``sum``/``count`` as
    produced by :meth:`LatencyRecorder.histogram`) with *cumulative*
    bucket counts and the trailing ``+Inf`` bucket, per the format."""
    lines = [f"# TYPE {name} histogram"]
    cumulative = 0
    for upper, count in histogram["buckets"]:
        cumulative += count
        lines.append(f'{name}_bucket{{le="{upper}"}} {cumulative}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {histogram["count"]}')
    lines.append(f"{name}_sum {repr(float(histogram['sum']))}")
    lines.append(f"{name}_count {histogram['count']}")
    return lines


def labeled_summary_lines(
    name: str, label: str, per_key: Mapping[str, Mapping]
) -> list[str]:
    """Render one labeled series per key from per-key summary dicts —
    e.g. cluster per-worker shard latencies as
    ``…_count{worker="pid-7"}``."""
    lines: list[str] = []
    for key in sorted(per_key):
        summary = per_key[key]
        tag = f'{{{label}="{_escape_label(str(key))}"}}'
        for field in sorted(summary):
            formatted = _format_value(summary[field])
            if formatted is not None:
                lines.append(f"{name}_{sanitize(field)}{tag} {formatted}")
    return lines


def render_metrics(sections: Mapping[str, Mapping]) -> str:
    """Flatten ``{prefix: payload}`` sections into one exposition body
    (generic counters only — callers append histogram/labeled lines)."""
    lines: list[str] = []
    for prefix in sections:
        lines.extend(mapping_lines(prefix, sections[prefix]))
    return "\n".join(lines) + "\n"
