"""Ablation A3 — the query-service runtime vs one-shot evaluation.

Design choice under study: serving repeated queries through
:class:`repro.service.GraphService` (prepared plans + memoised
per-version snapshots + an LRU result cache) versus the pre-service
behaviour of re-parsing, re-typechecking, re-compiling and
re-materialising adjacency on every call.

Three measurements on a repeated-query workload over the standard
``social_network`` generator:

- **cold**: one-shot ``Evaluator(graph.copy()).evaluate(parse_query(t))``
  per call (the copy defeats the snapshot memo, reproducing seed-era
  cost);
- **prepared**: a compiled :class:`PreparedQuery` re-executed per call
  (plan + snapshot reuse, no result cache);
- **warm**: ``GraphService.evaluate`` after a warm-up pass (all three
  reuse layers, result-cache hits).

The acceptance bar asserted below: warm is at least 5× faster than
cold on the repeated workload, and every service-path result is
set-equal to one-shot evaluation on the same graph version. A second
table measures batch throughput (sequential vs thread-pool).
"""

from __future__ import annotations

from repro.bench.harness import Table, time_call
from repro.gpc.engine import Evaluator
from repro.gpc.parser import parse_query
from repro.graph.generators import social_network
from repro.service import GraphService, PreparedQuery

#: The repeated-query workload: each text is evaluated REPEATS times.
WORKLOAD = [
    "TRAIL (x:Person) -[e:knows]-> (y:Person)",
    "TRAIL (x:Person) -[:knows]-> () -[:knows]-> (y:Person)",
    "SIMPLE (x:Person) ~[:married]~ (y:Person)",
    "TRAIL (x:Person) -[:lives_in]-> (c:City)",
    "TRAIL (x:Person) [~[:married]~ + -[:knows]->] (y:Person)",
]
REPEATS = 20


def _cold_once(graph, text):
    # graph.copy() starts at version 0 with no snapshot memo, so this
    # pays the full seed-era cost: parse, typecheck, compile, freeze.
    return Evaluator(graph.copy()).evaluate(parse_query(text))


def test_a3_cold_vs_warm(benchmark):
    graph = social_network(num_people=16, friend_degree=2, seed=3)
    service = GraphService(graph)
    table = Table(
        "A3: service runtime — cold vs prepared vs warm (cached)",
        ["query", "answers", "cold ms", "prepared ms", "warm ms", "speedup"],
    )

    total_cold = total_warm = 0.0
    for text in WORKLOAD:
        reference = Evaluator(graph).evaluate(parse_query(text))
        # Service answers must be set-equal to one-shot evaluation.
        assert service.evaluate(text) == reference

        _, cold = time_call(
            lambda t=text: [_cold_once(graph, t) for _ in range(REPEATS)]
        )
        prepared_query = PreparedQuery(text)
        _, prepared = time_call(
            lambda q=prepared_query: [q.execute(graph) for _ in range(REPEATS)]
        )
        warm_results, warm = time_call(
            lambda t=text: [service.evaluate(t) for _ in range(REPEATS)]
        )
        assert all(r == reference for r in warm_results)
        total_cold += cold
        total_warm += warm
        table.add(
            text if len(text) <= 44 else text[:41] + "...",
            len(reference),
            cold * 1000,
            prepared * 1000,
            warm * 1000,
            f"{cold / warm:.0f}x",
        )
    table.show()

    hit_rate = service.stats.result_cache.hit_rate
    print(f"result-cache hit rate: {hit_rate:.2f}, "
          f"snapshots built: {service.stats.snapshots_built}")
    # Acceptance criterion: warm >= 5x faster than cold on the
    # repeated workload (in practice it is orders of magnitude).
    assert total_cold >= 5 * total_warm, (
        f"warm serving only {total_cold / total_warm:.1f}x faster than cold"
    )

    benchmark(lambda: service.evaluate(WORKLOAD[0]))
    service.close()


def test_a3_batch_throughput():
    graph = social_network(num_people=16, friend_degree=2, seed=3)
    table = Table(
        "A3: batch evaluation — sequential vs thread pool",
        ["batch size", "sequential ms", "batch ms", "queries/s (batch)"],
    )
    for size in (5, 10, 20):
        workload = (WORKLOAD * size)[:size]
        with GraphService(graph) as service:
            sequential_results, sequential = time_call(
                lambda: [
                    service.evaluate(t, use_cache=False) for t in workload
                ]
            )
            batch_results, batched = time_call(
                lambda: service.evaluate_batch(workload, use_cache=False)
            )
        assert batch_results == sequential_results  # deterministic + ordered
        table.add(
            size,
            sequential * 1000,
            batched * 1000,
            size / batched if batched else float("inf"),
        )
    table.show()
