"""Ablation A4 — the query planner vs naive evaluation.

Design choice under study: the cost-aware plan optimisations of
:mod:`repro.gpc.planner` (PR 2) versus the pre-planner evaluator
(``EngineConfig(use_planner=False)``): nested-loop joins evaluated
left-to-right and ``shortest`` register searches seeded from *every*
graph node.

Two workloads:

- **join-heavy**: multi-way joins over the ``social_network``
  generator, where the nested loop pays ``O(|L| * |R|)`` unifications
  and the planner pays ``O(|L| + |R| + |out|)`` hash-join work, orders
  sides by estimated cardinality, and short-circuits empty sides. The
  acceptance bar asserted below: planner >= 5x faster in total.
- **label/property-selective shortest**: a ring with shortcut edges
  plus a large crowd of filler nodes. Label pruning seeds the register
  search only from ``:Hub`` nodes; condition pruning (``x.k = 0``)
  skips the *entire* per-start BFS for every start whose property can
  never satisfy the final check (all but one of them). Asserted: a
  >= 2x total win.

Every single measurement also asserts frozenset equality between
planned and naive answers — the planner must be answer-preserving,
not approximately right.
"""

from __future__ import annotations

from repro.bench.harness import Table, time_call
from repro.gpc.engine import EngineConfig, Evaluator
from repro.gpc.parser import parse_query
from repro.graph.generators import social_network
from repro.graph.property_graph import PropertyGraph

NAIVE = EngineConfig(use_planner=False)
PLANNED = EngineConfig(use_planner=True)

JOIN_WORKLOAD = [
    (
        "two-way, shared y",
        "TRAIL (x:Person) -[:knows]-> (y:Person), "
        "TRAIL (y:Person) -[:lives_in]-> (c:City)",
    ),
    (
        "three-way, chained",
        "TRAIL (x:Person) -[:knows]-> (y:Person), "
        "TRAIL (y:Person) -[:knows]-> (z:Person), "
        "TRAIL (z:Person) -[:lives_in]-> (c:City)",
    ),
    (
        "empty side short-circuit",
        "TRAIL (x:Person) -[:knows]-> (y:Person), "
        "TRAIL (a:Ghost) -[:a]-> (b)",
    ),
]


def _compare(graph, text):
    """Evaluate naive and planned, assert identical answers."""
    query = parse_query(text)
    naive_answers, naive_s = time_call(
        lambda: Evaluator(graph, NAIVE).evaluate(query)
    )
    planned_answers, planned_s = time_call(
        lambda: Evaluator(graph, PLANNED).evaluate(query)
    )
    assert planned_answers == naive_answers, (
        f"planner changed answers for {text!r}"
    )
    return len(naive_answers), naive_s, planned_s


def test_a4_join_heavy(benchmark):
    graph = social_network(num_people=260, friend_degree=3, seed=11)
    table = Table(
        "A4: planner — join-heavy workload (naive nested loop vs hash join)",
        ["workload", "answers", "naive ms", "planned ms", "speedup"],
    )
    total_naive = total_planned = 0.0
    for name, text in JOIN_WORKLOAD:
        answers, naive_s, planned_s = _compare(graph, text)
        total_naive += naive_s
        total_planned += planned_s
        table.add(
            name,
            answers,
            naive_s * 1000,
            planned_s * 1000,
            f"{naive_s / planned_s:.1f}x",
        )
    table.add(
        "TOTAL",
        "-",
        total_naive * 1000,
        total_planned * 1000,
        f"{total_naive / total_planned:.1f}x",
    )
    table.show()
    # Acceptance criterion: >= 5x on the join-heavy workload.
    assert total_naive >= 5 * total_planned, (
        f"planner only {total_naive / total_planned:.1f}x faster on joins"
    )

    query = parse_query(JOIN_WORKLOAD[0][1])
    benchmark(lambda: Evaluator(graph, PLANNED).evaluate(query))


def _selective_graph(
    ring: int = 400, num_hubs: int = 20, num_filler: int = 6000
) -> PropertyGraph:
    """A ring of ``Stop`` nodes with shortcut edges (branching 2 for
    the register BFS), every ``ring // num_hubs``-th stop additionally
    labeled ``Hub``, plus a large crowd of edge-free ``Filler`` nodes
    that a label-blind shortest search must still consider as starts.
    Hub spacing (20) is reachable in four steps (9+9+1+1), so the
    hub-to-hub workload has answers. Stops carry ``k = i mod
    (ring - 1)``, so ``k = 0`` selects a single highly selective
    start."""
    graph = PropertyGraph()
    stops = []
    for i in range(ring):
        labels = {"Stop"}
        if i % (ring // num_hubs) == 0:
            labels.add("Hub")
        stops.append(
            graph.add_node(
                f"s{i}", labels=labels, properties={"k": i % (ring - 1)}
            )
        )
    for i in range(ring):
        graph.add_edge(f"e{i}", stops[i], stops[(i + 1) % ring], labels={"link"})
        graph.add_edge(
            f"short{i}", stops[i], stops[(i + 9) % ring], labels={"link"}
        )
    for i in range(num_filler):
        graph.add_node(f"f{i}", labels={"Filler"})
    return graph


SHORTEST_WORKLOAD = [
    (
        "label-selective (Hub starts)",
        "SHORTEST (x:Hub) -[:link]->{1,4} (y:Hub)",
    ),
    (
        "property-selective (k = 0 starts)",
        "SHORTEST [(x:Stop) -[:link]->{1,5} (y)] << x.k = 0 >>",
    ),
]


def test_a4_label_selective_shortest(benchmark):
    graph = _selective_graph()
    table = Table(
        "A4: planner — selective shortest (all-node starts vs pruned starts)",
        ["workload", "answers", "naive ms", "planned ms", "speedup"],
    )
    total_naive = total_planned = 0.0
    for name, text in SHORTEST_WORKLOAD:
        answers, naive_s, planned_s = _compare(graph, text)
        assert answers > 0, f"workload {name!r} must produce answers"
        total_naive += naive_s
        total_planned += planned_s
        table.add(
            name,
            answers,
            naive_s * 1000,
            planned_s * 1000,
            f"{naive_s / planned_s:.1f}x",
        )
    table.add(
        "TOTAL",
        "-",
        total_naive * 1000,
        total_planned * 1000,
        f"{total_naive / total_planned:.1f}x",
    )
    table.show()
    # Acceptance criterion: a measurable win (>= 2x in practice; the
    # property-selective row alone is typically far above this).
    assert total_naive >= 2 * total_planned, (
        f"start pruning only {total_naive / total_planned:.1f}x faster"
    )

    query = parse_query(SHORTEST_WORKLOAD[1][1])
    benchmark(lambda: Evaluator(graph, PLANNED).evaluate(query))
