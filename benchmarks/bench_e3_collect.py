"""E3 — Figure 3 / Section 5: the three collect approaches.

Paper artefact: the grouping refactorization of Figure 3 and the three
approaches to edgeless repetition. Measured: answer counts per
approach on a pattern whose body can match edgeless paths (they must
differ exactly as the paper describes: syntactic rejects, run-time
returns only the 0th power, grouping returns grouped answers), plus
agreement of all approaches on positive-length bodies.
"""

from repro.bench.harness import Table
from repro.errors import CollectError
from repro.gpc.collect import CollectMode
from repro.gpc.engine import EngineConfig, Evaluator
from repro.gpc.parser import parse_pattern
from repro.graph.generators import chain_graph


def test_e3_collect_approaches(benchmark):
    graph = chain_graph(6)
    edgeless_body = parse_pattern("[[()] + [->]]{0,}")
    positive_body = parse_pattern("->{1,}")

    table = Table(
        "E3 / Figure 3: collect approaches on an edgeless-capable body",
        ["approach", "answers", "outcome"],
    )
    results = {}
    for mode in CollectMode:
        evaluator = Evaluator(graph, EngineConfig(collect_mode=mode))
        try:
            matches = evaluator.eval_pattern(edgeless_body, max_length=3)
            results[mode] = matches
            table.add(mode.value, len(matches), "evaluates")
        except CollectError:
            table.add(mode.value, "-", "rejected (GQL rule)")
    table.show()

    assert CollectMode.SYNTACTIC not in results
    assert len(results[CollectMode.GROUPING]) >= len(results[CollectMode.RUNTIME])

    # All approaches agree when every factor has positive length.
    per_mode = {
        mode: Evaluator(graph, EngineConfig(collect_mode=mode)).eval_pattern(
            positive_body, max_length=4
        )
        for mode in CollectMode
    }
    assert len(set(map(frozenset, per_mode.values()))) == 1

    grouping = Evaluator(graph, EngineConfig(collect_mode=CollectMode.GROUPING))
    benchmark(lambda: grouping.eval_pattern(edgeless_body, max_length=3))
