"""Ablation A10 — query insights overhead: fingerprint-aggregated
workload profiling must be (nearly) free.

Design choice under study: the insights registry aggregates every
evaluate by query fingerprint — canonicalise, hash, merge counters,
record latency. The fingerprint is memoised per query text and the
per-record work is a few dict updates behind one lock, so the hot
path adds O(1) bookkeeping per request, not a re-parse.

Two gates on the bench_a8 serving workload:

- **microbench** — a memoised ``record()`` on a warm registry must
  stay under ``RECORD_MAX_US`` microseconds (the per-request tax paid
  by every serving hop);
- **end-to-end** — concurrent HTTP serving with insights enabled must
  finish within ``OVERHEAD_MAX_RATIO`` (plus a small absolute slack
  for timer noise) of the same pass with insights disabled,
  best-of-``REPEATS`` per mode.
"""

from __future__ import annotations

import threading
import time

from repro.bench.harness import Table
from repro.graph.generators import social_network
from repro.obs import InsightsRegistry
from repro.server import HttpServiceClient, serve_background
from repro.service import GraphService

WORKLOAD = [
    "TRAIL (x:Person) -[e:knows]-> (y:Person)",
    "SIMPLE (x:Person) ~[:married]~ (y:Person)",
    "SHORTEST (x:Person) -[:knows]->{1,} (y:Person)",
    "TRAIL (x:Person) -[:knows]-> (y:Person), "
    "TRAIL (y:Person) -[:lives_in]-> (c:City)",
]

NUM_REQUESTS = 96
CONCURRENCY = 8
REPEATS = 3

#: Enabled serving may cost at most 10% over disabled, plus this many
#: milliseconds of absolute slack so sub-100ms baselines don't turn
#: scheduler jitter into failures.
OVERHEAD_MAX_RATIO = 1.10
OVERHEAD_SLACK_MS = 30.0

#: One warm record() — fingerprint memo hit plus aggregate updates.
RECORD_MAX_US = 50.0
MICRO_ITERATIONS = 20_000


def _graph():
    return social_network(num_people=16, friend_degree=2, seed=7)


def _record_micro() -> float:
    """Best-of-3 seconds per warm ``record()`` on a memoised query."""
    registry = InsightsRegistry()
    query = WORKLOAD[0]
    registry.record(query, latency_s=0.001, answers=3, cache="miss")
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        for _ in range(MICRO_ITERATIONS):
            registry.record(
                query, latency_s=0.001, answers=3, cache="hit"
            )
        best = min(best, time.perf_counter() - started)
    return best / MICRO_ITERATIONS


def _concurrent_pass(address) -> float:
    texts = [WORKLOAD[i % len(WORKLOAD)] for i in range(NUM_REQUESTS)]
    chunks = [texts[i::CONCURRENCY] for i in range(CONCURRENCY)]
    errors: list[Exception] = []

    def worker(chunk):
        try:
            with HttpServiceClient(*address) as client:
                for text in chunk:
                    client.query(text)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(chunk,)) for chunk in chunks
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    assert not errors, f"concurrent client failed: {errors[0]!r}"
    return elapsed


def _serve_workload(insights: bool) -> float:
    """Best-of-REPEATS wall clock for the concurrent pass on a warm
    server with the insights registry on/off."""
    service = GraphService(_graph(), insights=insights)
    with serve_background(
        service, max_queue_depth=4 * NUM_REQUESTS
    ) as handle:
        with HttpServiceClient(*handle.address) as client:
            for text in WORKLOAD:  # warm plans, caches, fingerprints
                client.query(text)
        best = min(
            _concurrent_pass(handle.address) for _ in range(REPEATS)
        )
        if insights:
            # The profiled pass really profiled: records accumulated.
            assert service.insights.counters()["records"] > 0
            assert len(service.insights) == len(WORKLOAD)
        else:
            assert service.insights.counters()["records"] == 0
    return best


def test_a10_insights_overhead():
    """A warm record() stays micro-cheap, and enabled insights cost
    <= 10% (plus timer slack) on warm concurrent HTTP serving."""
    record_s = _record_micro()
    record_us = record_s * 1e6

    off_s = _serve_workload(insights=False)
    on_s = _serve_workload(insights=True)

    table = Table(
        "A10: insights overhead — enabled vs disabled serving",
        [
            "measurement",
            "disabled",
            "enabled",
            "ratio",
            "bound",
        ],
    )
    table.add(
        "warm record() us",
        "-",
        f"{record_us:.2f}",
        "-",
        f"<= {RECORD_MAX_US:.0f}us",
    )
    table.add(
        f"{NUM_REQUESTS} reqs x{CONCURRENCY} ms",
        f"{off_s * 1000:.1f}",
        f"{on_s * 1000:.1f}",
        f"{on_s / off_s:.2f}x",
        f"<= {OVERHEAD_MAX_RATIO:.2f}x + {OVERHEAD_SLACK_MS:.0f}ms",
    )
    table.show()

    assert record_us <= RECORD_MAX_US, (
        f"warm insights record() costs {record_us:.1f}us "
        f"(bound {RECORD_MAX_US:.0f}us) — the fingerprint memo or the "
        f"aggregate update path regressed"
    )
    assert on_s <= off_s * OVERHEAD_MAX_RATIO + OVERHEAD_SLACK_MS / 1000, (
        f"insights-enabled serving took {on_s * 1000:.0f}ms vs "
        f"{off_s * 1000:.0f}ms disabled "
        f"({(on_s / off_s - 1) * 100:.1f}% overhead, bound "
        f"{(OVERHEAD_MAX_RATIO - 1) * 100:.0f}% + {OVERHEAD_SLACK_MS:.0f}ms)"
    )
