"""Ablation A2 — compositional engine vs per-path span matcher.

Design choice under study: the library ships two independent
implementations of the pattern semantics — the compositional bounded
evaluator (evaluates over the whole graph at once) and the Lemma 18/19
span matcher (evaluates against one fixed path). The enumerator
composes radix enumeration with the span matcher. Expected shape: for
producing *all* answers the compositional engine wins (it shares work
across paths); for checking a *single* path the span matcher wins (it
never looks at the rest of the graph). Both must agree exactly.
"""

from repro.bench.harness import Table, time_call
from repro.enumeration.radix import iter_paths_radix
from repro.enumeration.span_matcher import match_on_path
from repro.gpc.engine import Evaluator
from repro.gpc.parser import parse_pattern
from repro.graph.generators import cycle_graph


PATTERN_TEXTS = [
    "(x) -[e]-> (y)",
    "-[e]->{1,3}",
    "[(x) ->] + [<- (y)]",
]


def test_a2_engine_vs_span_matcher(benchmark):
    graph = cycle_graph(5)
    bound = 4
    table = Table(
        "A2: compositional engine vs span matcher (cycle-5, L=4)",
        ["pattern", "answers", "engine ms", "span sweep ms", "agree"],
    )
    all_paths = list(iter_paths_radix(graph, bound))
    for text in PATTERN_TEXTS:
        pattern = parse_pattern(text)
        evaluator = Evaluator(graph)
        engine_result, engine_time = time_call(
            lambda p=pattern: evaluator.eval_pattern(p, max_length=bound)
        )

        def sweep(p=pattern):
            out = set()
            for path in all_paths:
                for mu in match_on_path(p, path, graph):
                    out.add((path, mu))
            return frozenset(out)

        span_result, span_time = time_call(sweep)
        table.add(
            text,
            len(engine_result),
            engine_time * 1000,
            span_time * 1000,
            engine_result == span_result,
        )
        assert engine_result == span_result
    table.show()

    single_path = all_paths[len(all_paths) // 2]
    pattern = parse_pattern(PATTERN_TEXTS[1])
    benchmark(lambda: match_on_path(pattern, single_path, graph))
