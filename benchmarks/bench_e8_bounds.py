"""E8 — Lemmas 16 and 17: the Appendix C size bounds, measured.

Paper artefact: Lemma 16 (witness length bounds per restrictor) and
Lemma 17 (assignment size bound |mu| <= |p| * (2^(|pi|+1) - 2)).
Measured: on cyclic workloads, the maximum observed witness length and
assignment size against the proved bounds — the bounds must hold, and
the trail/simple bounds are tight on cycles.
"""

from repro.bench.harness import Table
from repro.enumeration.bounds import (
    lemma16_length_bound,
    lemma17_mu_bound,
    mu_size,
)
from repro.gpc.engine import evaluate
from repro.gpc.parser import parse_query
from repro.graph.generators import cycle_graph, ladder_graph


def test_e8_bounds(benchmark):
    workloads = [
        ("cycle-5", cycle_graph(5)),
        ("cycle-7", cycle_graph(7)),
        ("ladder-2", ladder_graph(2)),
    ]
    queries = [
        ("trail", "TRAIL -[e]->{1,}"),
        ("simple", "SIMPLE -[e]->{1,}"),
        ("shortest", "SHORTEST -[e]->{1,}"),
    ]
    table = Table(
        "E8 / Lemmas 16-17: measured vs proved bounds",
        ["graph", "restrictor", "max len", "len bound",
         "max |mu|", "|mu| bound ok"],
    )
    for graph_name, graph in workloads:
        for query_name, text in queries:
            query = parse_query(text)
            answers = evaluate(query, graph)
            max_length = max(len(a.path) for a in answers)
            length_bound = lemma16_length_bound(
                graph, query.restrictor, query.pattern
            )
            mu_ok = all(
                mu_size(a.assignment) <= lemma17_mu_bound(a.path, query.pattern)
                for a in answers
            )
            max_mu = max(mu_size(a.assignment) for a in answers)
            table.add(
                graph_name, query_name, max_length, length_bound, max_mu, mu_ok
            )
            assert max_length <= length_bound
            assert mu_ok
    table.show()

    graph = cycle_graph(5)
    query = parse_query("TRAIL -[e]->{1,}")
    benchmark(lambda: evaluate(query, graph))
