"""E4 — Theorem 10: finiteness of query answers.

Paper artefact: Theorem 10 (every query returns finitely many answers,
thanks to the mandatory restrictor). Measured: answer counts on cyclic
graphs — where the *unrestricted* denotation is infinite — for every
restrictor, across growing graph sizes. The expected shape: counts are
finite, grow with graph size, and obey trail >= simple.
"""

from repro.bench.harness import Table
from repro.bench.workloads import finiteness_workloads
from repro.gpc.engine import evaluate
from repro.gpc.parser import parse_query


QUERIES = {
    "trail": "TRAIL ->{1,}",
    "simple": "SIMPLE ->{1,}",
    "shortest": "SHORTEST ->{1,}",
    "shortest trail": "SHORTEST TRAIL ->{1,}",
    "shortest simple": "SHORTEST SIMPLE ->{1,}",
}


def test_e4_finiteness(benchmark):
    table = Table(
        "E4 / Theorem 10: answer counts per restrictor (all finite)",
        ["graph"] + list(QUERIES),
    )
    for name, graph in finiteness_workloads():
        row = [name]
        counts = {}
        for label, text in QUERIES.items():
            answers = evaluate(parse_query(text), graph)
            counts[label] = len(answers)
            row.append(len(answers))
        table.add(*row)
        assert counts["simple"] <= counts["trail"]
        assert counts["shortest trail"] <= counts["trail"]
    table.show()

    graph = finiteness_workloads()[0][1]
    query = parse_query(QUERIES["trail"])
    benchmark(lambda: evaluate(query, graph))
