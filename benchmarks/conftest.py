"""Benchmark-suite configuration.

Each ``bench_e*.py`` file regenerates one experiment from DESIGN.md's
index (the analogue of a paper table/figure): it prints the measured
series as an ASCII table — captured into ``bench_output.txt`` and
summarised in EXPERIMENTS.md — and registers a representative kernel
with pytest-benchmark for timing.
"""

collect_ignore_glob: list[str] = []
