"""E10 — Proposition 14 / Appendix D: arithmetic conditions.

Paper artefact: the Diophantine gadget proving GPC-with-arithmetic
undecidable. Measured: the gadget construction solves *decidable*
bounded instances — search cost grows steeply with the bound and the
polynomial degree, the practical face of the undecidability result.
"""

from repro.bench.harness import Table, time_call
from repro.extensions.diophantine import DiophantineInstance, solve_bounded

INSTANCES = [
    ("x - 3 = 0", DiophantineInstance(1, ((1, (1,)), (-3, (0,)))), 4, (3,)),
    ("x - y - 2 = 0", DiophantineInstance(
        2, ((1, (1, 0)), (-1, (0, 1)), (-2, (0, 0)))), 3, None),
    ("x^2 - 4 = 0", DiophantineInstance(1, ((1, (2,)), (-4, (0,)))), 3, (2,)),
    ("x + 1 = 0 (unsat)", DiophantineInstance(
        1, ((1, (1,)), (1, (0,)))), 3, "none"),
]


def test_e10_diophantine_gadget(benchmark):
    table = Table(
        "E10 / Prop 14: bounded Diophantine search via the gadget",
        ["equation", "bound", "solution", "time (ms)"],
    )
    for name, instance, bound, expected in INSTANCES:
        solution, elapsed = time_call(
            lambda i=instance, b=bound: solve_bounded(i, b)
        )
        table.add(name, bound, solution if solution else "none", elapsed * 1000)
        if expected == "none":
            assert solution is None
        elif expected is not None:
            assert solution == expected
        if solution is not None:
            assert instance.evaluate(solution) == 0
    table.show()

    instance = INSTANCES[0][1]
    benchmark(lambda: solve_bounded(instance, 4))
