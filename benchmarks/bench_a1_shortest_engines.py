"""Ablation A1 — the two `shortest` strategies.

Design choice under study: the engine's register-NFA shortest engine
(exact per-pair minima + witness enumeration) versus the naive
bounded-denotation iterative deepening it replaced (still present as
the fallback for extension patterns). Expected shape: on patterns
whose denotation grows with the length horizon, the register engine is
dramatically cheaper and — crucially — its cost does not explode with
the graph's walk count.
"""

from repro.bench.harness import Table, time_call
from repro.gpc.engine import EngineConfig, Evaluator
from repro.gpc.parser import parse_pattern
from repro.graph.generators import cycle_graph


def _register_shortest(graph, pattern):
    evaluator = Evaluator(graph)
    return evaluator._eval_shortest(pattern)


def _fallback_shortest(graph, pattern):
    evaluator = Evaluator(graph, EngineConfig(shortest_deepening_limit=64))
    return evaluator._eval_shortest_fallback(pattern)


def test_a1_register_vs_deepening(benchmark):
    pattern = parse_pattern("(x) ->{1,} (y)")
    table = Table(
        "A1: shortest via register NFA vs bounded deepening",
        ["cycle size", "answers", "register ms", "deepening ms"],
    )
    for size in (3, 4, 5, 6):
        graph = cycle_graph(size)
        register_answers, register_time = time_call(
            lambda g=graph: _register_shortest(g, pattern)
        )
        fallback_answers, fallback_time = time_call(
            lambda g=graph: _fallback_shortest(g, pattern)
        )
        assert register_answers == fallback_answers  # same semantics
        table.add(
            size,
            len(register_answers),
            register_time * 1000,
            fallback_time * 1000,
        )
    table.show()

    graph = cycle_graph(5)
    benchmark(lambda: _register_shortest(graph, pattern))
