"""Ablation A5 — sharded cluster serving vs single-service evaluation.

Design choice under study: scatter/gather evaluation over partitioned
seed spaces (:class:`repro.cluster.ClusterService`) versus evaluating
each query whole in one process (:class:`repro.service.GraphService`).

Two measurements:

- **equivalence**: on a mixed trail/simple/shortest/join workload,
  every backend — serial, thread, process — returns answers
  frozenset-identical to the single service. This is the soundness
  claim of the decomposition (disjoint seed cells union losslessly
  under GPC's set semantics) checked end to end.
- **speedup**: on a CPU-bound shortest/join workload whose register-NFA
  searches dominate (the natively sharded path), a 4-worker process
  backend must finish the warm repeated-query pass at least **2x**
  faster than the single service. Shard work conserves (the per-shard
  totals sum to the unsharded cost within noise), so the bound is
  essentially parallel efficiency >= 50% — the GIL prevents the thread
  backend from getting there, which is exactly why the process backend
  exists. The speedup assertion needs real parallel hardware and is
  skipped below 4 usable CPUs (CI runners have 4).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import Table, time_call
from repro.cluster import ClusterService
from repro.graph.generators import social_network
from repro.service import GraphService

#: Mixed workload for the cross-backend equivalence table.
VARIETY_WORKLOAD = [
    "TRAIL (x:Person) -[e:knows]-> (y:Person)",
    "SIMPLE (x:Person) ~[:married]~ (y:Person)",
    "SHORTEST (x:Person) -[:knows]->{1,} (y:Person)",
    "TRAIL (x:Person) -[:knows]-> (y:Person), TRAIL (y:Person) -[:lives_in]-> (c:City)",
]

#: CPU-bound workload: per-start register searches dominate, which is
#: the work the seed partitioner divides across workers.
CPU_WORKLOAD = [
    "SHORTEST (x:Person) -[:knows]->{1,} (y:Person)",
    "SHORTEST (x:Person) [-[:knows]-> -[:knows]->]{1,} (y:Person)",
    "SHORTEST (x:Person) -[:knows]->{1,} (y:Person), TRAIL (y:Person) -[:lives_in]-> (c:City)",
]

PROCESS_WORKERS = 4


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_a5_backend_equivalence():
    """Serial, thread and process backends all reproduce the single
    service's answers exactly, query by query."""
    graph = social_network(num_people=16, friend_degree=2, seed=3)
    single = GraphService(graph.copy())
    reference = {
        text: single.evaluate(text, use_cache=False)
        for text in VARIETY_WORKLOAD
    }
    single.close()

    table = Table(
        "A5: cross-backend answer equivalence (sharded vs single)",
        ["query", "answers", "serial ms", "thread ms", "process ms"],
    )
    timings: dict[str, dict[str, float]] = {t: {} for t in VARIETY_WORKLOAD}
    for backend in ("serial", "thread", "process"):
        with ClusterService(
            graph.copy(), backend=backend, num_workers=2
        ) as cluster:
            for text in VARIETY_WORKLOAD:
                result, elapsed = time_call(lambda t=text: cluster.evaluate(t))
                # The acceptance bar: set-identical answers per backend.
                assert result == reference[text], (
                    f"{backend} backend diverged on {text!r}"
                )
                timings[text][backend] = elapsed * 1000
    for text in VARIETY_WORKLOAD:
        table.add(
            text if len(text) <= 44 else text[:41] + "...",
            len(reference[text]),
            timings[text]["serial"],
            timings[text]["thread"],
            timings[text]["process"],
        )
    table.show()


def test_a5_process_speedup():
    """>= 2x wall clock over the single service at 4 process workers
    on the CPU-bound workload (warm pool, warm plans — the
    mutation-light serving regime the cluster targets)."""
    cpus = _usable_cpus()
    if cpus < PROCESS_WORKERS:
        pytest.skip(
            f"needs {PROCESS_WORKERS} usable CPUs for a meaningful "
            f"parallel speedup, found {cpus}"
        )
    graph = social_network(num_people=32, friend_degree=3, seed=13)

    single = GraphService(graph.copy())
    reference = {}
    for text in CPU_WORKLOAD:  # warm the plan cache, keep results
        reference[text] = single.evaluate(text, use_cache=False)
    single_times = {}
    for text in CPU_WORKLOAD:
        _, single_times[text] = time_call(
            lambda t=text: single.evaluate(t, use_cache=False)
        )
    single_s = sum(single_times.values())
    single.close()

    table = Table(
        "A5: CPU-bound workload — single service vs 4-worker process pool",
        ["query", "answers", "single ms", "process ms", "speedup"],
    )
    with ClusterService(
        graph.copy(), backend="process", num_workers=PROCESS_WORKERS
    ) as cluster:
        for text in CPU_WORKLOAD:  # warm-up: ships snapshot, compiles plans
            assert cluster.evaluate(text, use_cache=False) == reference[text]
        process_times = {}
        for text in CPU_WORKLOAD:
            # use_cache=False: measure sharded evaluation itself, not
            # the service-level result cache (both sides bypass it).
            result, elapsed = time_call(
                lambda t=text: cluster.evaluate(t, use_cache=False)
            )
            assert result == reference[text]
            process_times[text] = elapsed
        process_s = sum(process_times.values())
        for text in CPU_WORKLOAD:
            table.add(
                text if len(text) <= 44 else text[:41] + "...",
                len(reference[text]),
                single_times[text] * 1000,
                process_times[text] * 1000,
                f"{single_times[text] / process_times[text]:.1f}x",
            )
        workers_seen = len(cluster.stats.per_worker)
        shipped = cluster.stats.snapshots_shipped
    table.add("TOTAL", "-", single_s * 1000, process_s * 1000,
              f"{single_s / process_s:.1f}x")
    table.show()
    print(
        f"workers observed: {workers_seen}, snapshots shipped: {shipped}, "
        f"usable cpus: {cpus}"
    )
    assert shipped == 1, "snapshot must ship once for the whole warm run"
    # Acceptance criterion: >= 2x wall clock at 4 process workers.
    assert single_s >= 2 * process_s, (
        f"process backend only {single_s / process_s:.2f}x faster "
        f"({single_s * 1000:.0f}ms vs {process_s * 1000:.0f}ms)"
    )
