"""E9 — Section 7: restrictor placement.

Paper artefact: the 3-node counterexample showing why GQL disallows
arbitrary nesting of restrictors: under ``trail [shortest ...]`` the
GQL rationale forces the "shortest" subpattern onto a path of length 2
although a length-1 path exists. Measured: the anomaly reproduces
exactly, local semantics returns no answer, and the anomaly frequency
over perturbed random graphs.
"""

import random

from repro.bench.harness import Table
from repro.extensions.mixed_restrictors import section7_anomaly
from repro.gpc.engine import evaluate
from repro.gpc.parser import parse_query
from repro.graph.generators import section7_counterexample


def test_e9_restrictor_placement(benchmark):
    report = section7_anomaly()
    table = Table(
        "E9 / Section 7: trail[shortest ...] on the counterexample graph",
        ["quantity", "value"],
    )
    table.add("true shortest A->B length", report.true_shortest_length)
    table.add("local-shortest semantics answers", report.local_semantics_answers)
    table.add("GQL-rationale answers", report.global_semantics_answers)
    table.add("witness length under trail", report.global_witness_length)
    table.add("anomaly present", report.anomaly_present)
    table.show()

    assert report.anomaly_present
    assert report.true_shortest_length == 1
    assert report.global_witness_length == 2
    assert report.local_semantics_answers == 0

    # Sanity: top-level restrictors on the same graph are unaffected.
    graph = section7_counterexample()
    shortest = evaluate(parse_query("SHORTEST (:A) ->{1,} (:B)"), graph)
    assert {len(a.path) for a in shortest} == {1}

    benchmark(section7_anomaly)
