"""Ablation A11 — predicate pushdown and the register-free flat lane.

Design choice under study: lifting single-variable ``x.key = const``
condition atoms out of end-of-run ``_Check`` evaluation and into the
bind/step sites of the dense register search (tested against
per-(key, const) bitmask indexes), plus the register-free flat-array
lane the elision unlocks (states packed as ``node * num_states + q``
ints when no register constraint survives).

Two measurements on one 10k-node graph — the A9 segmented ring +
chords topology, with a node property ``k`` that is 1 exactly on each
segment's second node:

- **condition-heavy shortest**: ``<< m.k = 1 >>`` over a mid-pattern
  variable. Unpushed, every chord branch survives until the final
  check; pushed, the bitmask kills it at the bind site. Asserted:
  >= 2x pushdown-on vs pushdown-off, identical answer frozensets.
- **register-free RPQ**: the plain A9 label-reachability query. Both
  sides use bitmask probes; the ablation isolates the flat packed-int
  lane versus the dict-keyed dense program. Asserted: >= 1.5x,
  identical answer frozensets.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import Table, emit_json, time_call
from repro.gpc.engine import EngineConfig, Evaluator
from repro.gpc.parser import parse_query
from repro.graph import PropertyGraph
from repro.graph.snapshot import GraphSnapshot

N = 10_000
SEG = 250
CHORDS = 16
COND_QUERY = (
    "SHORTEST [(x:Probe) -> (m) -[:next]->{1,} (y:Adj)] << m.k = 1 >>"
)
RPQ_QUERY = "SHORTEST (x:Probe) -[:next]->{1,} (y:Adj)"

PUSH_ON = EngineConfig(use_pushdown=True)
PUSH_OFF = EngineConfig(use_pushdown=False)


@pytest.fixture(scope="module")
def snapshot() -> GraphSnapshot:
    rng = random.Random(11)
    graph = PropertyGraph()
    handles = []
    for i in range(N):
        labels = []
        if i % SEG == 0:
            labels.append("Probe")
        if i % SEG == 6:
            labels.append("Adj")
        # k = 1 exactly on each segment's second node: the only first
        # hop from a Probe that the pushed condition lets live.
        handles.append(
            graph.add_node(f"n{i}", labels, {"k": 1 if i % SEG == 1 else 0})
        )
    for i in range(N - 1):
        if (i + 1) % SEG != 0:
            graph.add_edge(f"next{i}", handles[i], handles[i + 1], ["next"])
    for i in range(N):
        for c in range(CHORDS):
            graph.add_edge(
                f"c{i}_{c}", handles[i], handles[rng.randrange(N)], ["chord"]
            )
    return GraphSnapshot(graph)


def _best_of(fn, repeats: int = 3) -> tuple[object, float]:
    result, best = fn(), float("inf")
    for _ in range(repeats):
        _, elapsed = time_call(fn)
        best = min(best, elapsed)
    return result, best


def test_a11_condition_pushdown_speedup(snapshot):
    query = parse_query(COND_QUERY)

    pushed_answers, pushed_s = _best_of(
        lambda: Evaluator(snapshot, PUSH_ON).evaluate(query)
    )
    unpushed_answers, unpushed_s = _best_of(
        lambda: Evaluator(snapshot, PUSH_OFF).evaluate(query)
    )
    assert pushed_answers == unpushed_answers
    assert len(pushed_answers) >= N // SEG  # every in-segment witness

    speedup = unpushed_s / pushed_s
    table = Table(
        "A11: condition-heavy SHORTEST (<< m.k = 1 >> mid-pattern)",
        ["plan", "ms / query"],
    )
    table.add("check at accept (pushdown off)", unpushed_s * 1000)
    table.add("bitmask at bind (pushdown on)", pushed_s * 1000)
    table.show()
    emit_json(
        "a11_pushdown_condition",
        {
            "nodes": N,
            "unpushed_ms": unpushed_s * 1000,
            "pushed_ms": pushed_s * 1000,
            "speedup": speedup,
        },
    )
    # Acceptance criterion: >= 2x on the condition-heavy workload.
    assert speedup >= 2, f"pushdown only {speedup:.2f}x vs check-at-accept"


def test_a11_flat_lane_speedup(snapshot):
    query = parse_query(RPQ_QUERY)

    flat_answers, flat_s = _best_of(
        lambda: Evaluator(snapshot, PUSH_ON).evaluate(query)
    )
    dict_answers, dict_s = _best_of(
        lambda: Evaluator(snapshot, PUSH_OFF).evaluate(query)
    )
    assert flat_answers == dict_answers
    assert len(flat_answers) == N // SEG  # one witness per segment

    speedup = dict_s / flat_s
    table = Table(
        "A11: register-free RPQ (flat packed-int lane vs dict states)",
        ["lane", "ms / query"],
    )
    table.add("dict-keyed dense program", dict_s * 1000)
    table.add("flat packed-int arrays", flat_s * 1000)
    table.show()
    emit_json(
        "a11_pushdown_flat_lane",
        {
            "nodes": N,
            "dict_ms": dict_s * 1000,
            "flat_ms": flat_s * 1000,
            "speedup": speedup,
        },
    )
    # Acceptance criterion: >= 1.5x on the register-free workload.
    assert speedup >= 1.5, f"flat lane only {speedup:.2f}x vs dict states"
