"""Ablation A9 — columnar CSR snapshot core vs the seed layout.

Design choice under study: the interned-id + array-backed CSR
snapshot (:class:`GraphSnapshot`) versus the seed tuple-dict layout
preserved verbatim as :class:`LegacyGraphSnapshot`.

Three measurements on one 10k-node graph:

- **shortest-heavy evaluation**: a segmented ring of ``next`` edges
  (broken every ``SEG`` nodes so each ``Probe`` start reaches exactly
  one ``Adj`` witness six hops away) plus ``CHORDS`` random ``chord``
  out-edges per node. The chords are pure label-filtering work for
  the register-NFA search — the part the dense CSR fast path
  accelerates. Asserted: >= 1.5x over the seed layout, identical
  answer frozensets.
- **pickled snapshot size**: the derived-column codec (endpoint
  columns + run-length-encoded labelsets and property indexes; CSR
  rebuilt on load) must shrink the process-pool shipping payload by
  >= 3x versus pickling the seed dict layout.
- **resident footprint** of the column arrays versus the seed dicts,
  summed with ``sys.getsizeof`` — logged for the record, not
  asserted (CPython container overhead varies across versions).
"""

from __future__ import annotations

import pickle
import random
import sys
from array import array

import pytest

from repro.bench.harness import Table, emit_json, time_call
from repro.gpc.engine import Evaluator
from repro.gpc.parser import parse_query
from repro.graph import PropertyGraph
from repro.graph.snapshot import GraphSnapshot
from repro.graph.snapshot_legacy import LegacyGraphSnapshot

N = 10_000
SEG = 250
CHORDS = 16
QUERY = "SHORTEST (x:Probe) -[:next]->{1,} (y:Adj)"


@pytest.fixture(scope="module")
def views() -> tuple[GraphSnapshot, LegacyGraphSnapshot]:
    rng = random.Random(9)
    graph = PropertyGraph()
    handles = []
    for i in range(N):
        labels = []
        if i % SEG == 0:
            labels.append("Probe")
        if i % SEG == 6:
            labels.append("Adj")
        handles.append(graph.add_node(f"n{i}", labels))
    for i in range(N - 1):
        # Break the ring at segment boundaries: every Probe has exactly
        # one Adj witness, six ``next`` hops away.
        if (i + 1) % SEG != 0:
            graph.add_edge(f"next{i}", handles[i], handles[i + 1], ["next"])
    for i in range(N):
        for c in range(CHORDS):
            graph.add_edge(
                f"c{i}_{c}", handles[i], handles[rng.randrange(N)], ["chord"]
            )
    return GraphSnapshot(graph), LegacyGraphSnapshot(graph)


def _best_of(fn, repeats: int = 3) -> tuple[object, float]:
    result, best = fn(), float("inf")
    for _ in range(repeats):
        _, elapsed = time_call(fn)
        best = min(best, elapsed)
    return result, best


def _footprint(obj: object) -> int:
    """Shallow-ish resident bytes: containers plus one level of values
    (covers dict-of-tuples in the seed layout and dict-of-arrays in
    the columnar core without chasing shared element ids)."""
    total = sys.getsizeof(obj)
    if isinstance(obj, dict):
        for value in obj.values():
            if isinstance(value, (tuple, dict, array)):
                total += sys.getsizeof(value)
    return total


def test_a9_shortest_speedup(views):
    csr, legacy = views
    query = parse_query(QUERY)

    dense_answers, dense_s = _best_of(
        lambda: Evaluator(csr).evaluate(query)
    )
    seed_answers, seed_s = _best_of(
        lambda: Evaluator(legacy).evaluate(query)
    )
    assert dense_answers == seed_answers
    assert len(dense_answers) == N // SEG  # one witness per segment

    csr_bytes = sum(
        _footprint(getattr(csr._core, slot))
        for slot in type(csr._core).__slots__
    )
    seed_slots = (
        "_node_labels", "_dedge_labels", "_uedge_labels", "_src", "_tgt",
        "_endpoints", "_properties", "_out", "_in", "_undirected_at",
        "_nodes", "_dedges", "_uedges", "_nodes_by_label",
        "_dedges_by_label", "_uedges_by_label",
    )
    seed_bytes = sum(
        _footprint(getattr(legacy, slot)) for slot in seed_slots
    )

    speedup = seed_s / dense_s
    table = Table(
        "A9: SHORTEST over 10k-node segmented ring + chords",
        ["layout", "ms / query", "index bytes (getsizeof)"],
    )
    table.add("seed tuple-dict", seed_s * 1000, seed_bytes)
    table.add("columnar CSR", dense_s * 1000, csr_bytes)
    table.show()
    print(
        f"A9 footprint: csr columns {csr_bytes / 1e6:.1f} MB vs seed "
        f"dicts {seed_bytes / 1e6:.1f} MB "
        f"({seed_bytes / csr_bytes:.1f}x, logged not asserted)"
    )
    emit_json(
        "a9_csr_shortest",
        {
            "nodes": N,
            "seed_ms": seed_s * 1000,
            "csr_ms": dense_s * 1000,
            "speedup": speedup,
            "csr_index_bytes": csr_bytes,
            "seed_index_bytes": seed_bytes,
        },
    )
    # Acceptance criterion: dense CSR >= 1.5x on the shortest-heavy
    # workload (in practice 4-6x; the floor absorbs CI noise).
    assert speedup >= 1.5, f"CSR layout only {speedup:.2f}x vs seed"


def test_a9_pickle_size(views):
    csr, legacy = views
    csr_blob = pickle.dumps(csr)
    seed_blob = pickle.dumps(legacy)
    ratio = len(seed_blob) / len(csr_blob)

    # The shipped snapshot still answers identically after the
    # column-codec round trip (CSR and label indexes rebuilt on load).
    clone = pickle.loads(csr_blob)
    query = parse_query(QUERY)
    assert Evaluator(clone).evaluate(query) == Evaluator(csr).evaluate(query)

    table = Table(
        "A9: pickled snapshot payload (process-pool shipping)",
        ["layout", "bytes", "reduction"],
    )
    table.add("seed tuple-dict", len(seed_blob), "1x")
    table.add("columnar codec", len(csr_blob), f"{ratio:.2f}x")
    table.show()
    emit_json(
        "a9_csr_pickle",
        {
            "nodes": N,
            "seed_bytes": len(seed_blob),
            "csr_bytes": len(csr_blob),
            "reduction": ratio,
        },
    )
    # Acceptance criterion: >= 3x smaller on a 10k-node graph.
    assert ratio >= 3, f"pickle payload only {ratio:.2f}x smaller"
