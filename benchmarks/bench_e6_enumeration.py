"""E6 — Theorem 12: enumeration in polynomial space (data complexity).

Paper artefact: Theorem 12 (answers can be enumerated with a working
set polynomial in the graph for a fixed query). Measured: for the
fixed query ``SHORTEST (x) ->{1,} (y)`` on growing cycles, the peak
working-set size of the instrumented enumerator versus the number of
emitted answers: the working set must grow polynomially (here:
quadratically, one slot per endpoint pair) even as candidate paths
grow much faster.
"""

from repro.bench.harness import Table
from repro.enumeration.enumerator import enumerate_answers
from repro.gpc.parser import parse_query
from repro.graph.generators import cycle_graph


def test_e6_enumeration_space(benchmark):
    query = parse_query("SHORTEST (x) ->{1,} (y)")
    table = Table(
        "E6 / Theorem 12: enumerator working set vs output (fixed query)",
        ["cycle size", "answers", "paths scanned", "peak working set", "bound n^2"],
    )
    for size in (3, 4, 5, 6):
        graph = cycle_graph(size)
        answers, stats = enumerate_answers(graph, query, max_length=size)
        table.add(
            size,
            len(answers),
            stats.paths_enumerated,
            stats.peak_working_set,
            size * size,
        )
        assert stats.peak_working_set <= size * size
    table.show()

    graph = cycle_graph(5)
    benchmark(lambda: enumerate_answers(graph, query, max_length=5))
