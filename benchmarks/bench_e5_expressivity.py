"""E5 — Theorem 11: baselines vs GPC+ translations.

Paper artefact: Theorem 11 (GPC+ expresses UC2RPQs, NREs, and regular
queries). Measured: on random graphs, the baseline evaluator's answers
equal the translated GPC+ query's answers for each class, and the
relative cost of running the general-purpose GPC engine against the
specialised classical algorithms (the engine is expected to be slower
by a constant-to-polynomial factor — it computes bindings and
witnesses, not just pairs).
"""

from repro.bench.harness import Table, time_call
from repro.bench.workloads import expressivity_graphs
from repro.baselines.c2rpq import Atom, C2RPQ, eval_c2rpq
from repro.baselines.datalog import Program
from repro.baselines.nre import NREConcat, NREStar, NRESymbol, NRETest, eval_nre
from repro.baselines.regular_queries import (
    RegularQuery,
    atom,
    clause,
    eval_regular_query,
    tatom,
)
from repro.baselines.rpq import eval_rpq
from repro.translate import (
    c2rpq_to_gpc_plus,
    nre_to_gpc_plus,
    regular_query_to_gpc_plus,
    rpq_to_gpc_plus,
)

RPQ_EXPR = "a (b | a)* b-"
C2RPQ_QUERY = C2RPQ(("x", "z"), (Atom("x", "a+", "y"), Atom("y", "b", "z")))
NRE_EXPR = NREConcat(
    NRESymbol("a"), NRETest(NREConcat(NRESymbol("b"), NREStar(NRESymbol("b"))))
)
RQ_QUERY = RegularQuery(
    Program(
        (
            clause(atom("P", "x", "y"), atom("a", "x", "y")),
            clause(atom("P", "x", "y"), atom("b", "x", "y")),
            clause(atom("Ans", "x", "y"), tatom("P", "x", "y")),
        )
    )
)


def test_e5_expressivity(benchmark):
    graphs = expressivity_graphs(count=4, seed=7)
    cases = [
        ("2RPQ", lambda g: eval_rpq(g, RPQ_EXPR),
         lambda g: rpq_to_gpc_plus(RPQ_EXPR).evaluate(g)),
        ("C2RPQ", lambda g: eval_c2rpq(g, C2RPQ_QUERY),
         lambda g: c2rpq_to_gpc_plus(C2RPQ_QUERY).evaluate(g)),
        ("NRE", lambda g: eval_nre(g, NRE_EXPR),
         lambda g: nre_to_gpc_plus(NRE_EXPR).evaluate(g)),
        ("RQ", lambda g: eval_regular_query(g, RQ_QUERY),
         lambda g: regular_query_to_gpc_plus(RQ_QUERY).evaluate(g)),
    ]
    table = Table(
        "E5 / Theorem 11: baseline vs translated GPC+ (4 random graphs)",
        ["class", "pairs (sum)", "agree", "baseline ms", "gpc+ ms", "slowdown"],
    )
    for name, run_baseline, run_translated in cases:
        pair_total = 0
        agree = True
        baseline_ms = translated_ms = 0.0
        for graph in graphs:
            base, t1 = time_call(lambda g=graph, f=run_baseline: f(g))
            trans, t2 = time_call(lambda g=graph, f=run_translated: f(g))
            pair_total += len(base)
            agree = agree and base == trans
            baseline_ms += t1 * 1000
            translated_ms += t2 * 1000
        slowdown = translated_ms / baseline_ms if baseline_ms > 0 else 0.0
        table.add(name, pair_total, agree, baseline_ms, translated_ms, slowdown)
        assert agree
    table.show()

    graph = graphs[0]
    query = rpq_to_gpc_plus(RPQ_EXPR)
    benchmark(lambda: query.evaluate(graph))
