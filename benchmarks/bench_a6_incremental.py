"""Ablation A6 — incremental snapshot deltas + footprint invalidation.

Design choice under study: the delta-driven mutation path (PR 4)
versus the PR 1–3 behaviour of rebuilding every index and flushing the
whole result cache on any mutation.

Three measurements:

- **snapshot refresh** on a 10k-node graph under single-edge
  mutations: time to refresh the memoised snapshot via incremental
  derivation (:meth:`GraphSnapshot.derive` patching the previous
  version) versus a full index rebuild. The acceptance bar asserted
  below is >= 5x (in practice it is tens of x).
- **cache retention** on a mutation-heavy mixed workload whose
  mutations are footprint-disjoint from the served queries: the warm
  result-cache hit rate must stay > 0 (entries are re-stamped, not
  flushed) where the pre-PR behaviour was a hit rate of exactly zero.
- **answer equality** on randomized mutation/query mixes: the
  incremental service path (derived snapshots + semantic cache) must
  return frozenset-identical answers to one-shot evaluation over a
  freshly rebuilt snapshot, mutation after mutation.
"""

from __future__ import annotations

import random

from repro.bench.harness import Table, emit_json, time_call
from repro.gpc.engine import Evaluator
from repro.gpc.parser import parse_query
from repro.graph.generators import social_network
from repro.graph.snapshot import GraphSnapshot
from repro.service import GraphService

#: Queries whose footprints avoid the mutation stream of the cache
#: retention measurement (they never touch City nodes or lives_in
#: edges) plus one that intersects it.
WORKLOAD = [
    "TRAIL (x:Person) -[e:knows]-> (y:Person)",
    "TRAIL (x:Person) -[:knows]-> () -[:knows]-> (y:Person)",
    "SIMPLE (x:Person) ~[:married]~ (y:Person)",
]
INTERSECTING = "TRAIL (x:Person) -[:lives_in]-> (c:City)"


def test_a6_snapshot_derivation_speed():
    graph = social_network(num_people=10_000, friend_degree=2, seed=11)
    graph.snapshot().label_cardinalities()  # warm the memo + cards
    nodes = sorted(graph.nodes)
    repeats = 12

    def mutate_and_derive():
        for i in range(repeats):
            graph.add_edge(
                f"bench{graph.version}", nodes[i], nodes[-1 - i], ["knows"]
            )
            snap = graph.snapshot()
        return snap

    derived, derive_time = time_call(mutate_and_derive)
    assert graph.snapshot_derivations >= repeats
    per_derive = derive_time / repeats

    rebuilt, rebuild_time = time_call(lambda: GraphSnapshot(graph))
    # Structural agreement between the two paths, asserted through the
    # public API (the columnar core organises internals differently
    # between a derived snapshot and a fresh rebuild by design).
    assert derived.version == rebuilt.version
    assert all(
        derived.out_edges(node) == rebuilt.out_edges(node)
        for node in rebuilt.nodes
    )
    assert all(
        derived.nodes_with_label(label) == rebuilt.nodes_with_label(label)
        for label in rebuilt.all_labels()
    )
    assert (
        derived.label_cardinalities() == rebuilt.label_cardinalities()
    )

    speedup = rebuild_time / per_derive
    table = Table(
        "A6: snapshot refresh after a single-edge mutation (10k nodes)",
        ["path", "ms / refresh", "speedup"],
    )
    table.add("full rebuild", rebuild_time * 1000, "1x")
    table.add("incremental derive", per_derive * 1000, f"{speedup:.0f}x")
    table.show()
    emit_json(
        "a6_snapshot_refresh",
        {
            "rebuild_ms": rebuild_time * 1000,
            "derive_ms": per_derive * 1000,
            "speedup": speedup,
        },
    )
    # Acceptance criterion: incremental >= 5x faster than rebuild.
    assert speedup >= 5, (
        f"incremental derivation only {speedup:.1f}x faster than rebuild"
    )


def test_a6_cache_retention_under_disjoint_mutations():
    graph = social_network(num_people=200, friend_degree=3, seed=7)
    service = GraphService(graph)
    for text in WORKLOAD + [INTERSECTING]:
        service.evaluate(text)  # warm

    rounds = 25
    for i in range(rounds):
        # City-world churn: disjoint from every WORKLOAD footprint,
        # intersecting for the lives_in query.
        city = service.add_node(f"newcity{i}", ["City"], {"name": f"C{i}"})
        person = sorted(graph.nodes_with_label("Person"))[i]
        service.add_edge(f"newlives{i}", person, city, ["lives_in"])
        for text in WORKLOAD:
            service.evaluate(text)
        service.evaluate(INTERSECTING)

    stats = service.stats.result_cache
    hit_rate = stats.hit_rate
    table = Table(
        "A6: result cache across footprint-disjoint mutations",
        ["metric", "value"],
    )
    table.add("rounds (2 mutations each)", rounds)
    table.add("hits", stats.hits)
    table.add("restamps", stats.restamps)
    table.add("invalidations", stats.invalidations)
    table.add("hit rate", f"{hit_rate:.2f}")
    table.add("snapshots derived", service.stats.snapshots_derived)
    table.show()
    emit_json(
        "a6_cache_retention",
        {
            "rounds": rounds,
            "hit_rate": hit_rate,
            "hits": stats.hits,
            "restamps": stats.restamps,
            "invalidations": stats.invalidations,
            "snapshots_derived": service.stats.snapshots_derived,
        },
    )
    # Acceptance criteria: the disjoint queries keep hitting (the old
    # behaviour flushed the cache every round: hit rate would be ~0 on
    # the mutating workload), the intersecting query keeps missing.
    assert hit_rate > 0
    assert stats.restamps >= rounds * len(WORKLOAD)
    assert stats.invalidations >= rounds
    # Every answer served from a restamped entry is still exact.
    for text in WORKLOAD + [INTERSECTING]:
        assert service.evaluate(text) == Evaluator(graph).evaluate(
            parse_query(text)
        )
    service.close()


def test_a6_incremental_equals_rebuild_on_random_mix(benchmark):
    """Randomized mutation/query mixes: the incremental path and a
    from-scratch rebuild must agree answer-for-answer."""
    rng = random.Random(23)
    graph = social_network(num_people=60, friend_degree=2, seed=3)
    service = GraphService(graph)
    queries = WORKLOAD + [INTERSECTING]

    checks = 0
    for round_ in range(30):
        choice = rng.randrange(5)
        people = sorted(graph.nodes_with_label("Person"))
        if choice == 0:
            service.add_node(f"extra{round_}", ["Person"], {"age": round_})
        elif choice == 1:
            service.add_edge(
                f"k{round_}", rng.choice(people), rng.choice(people),
                ["knows"],
            )
        elif choice == 2:
            service.set_property(rng.choice(people), "age", round_)
        elif choice == 3:
            edges = sorted(graph.directed_edges)
            service.remove_edge(rng.choice(edges))
        else:
            service.remove_node(rng.choice(people))
        for text in queries:
            served = service.evaluate(text)
            # The reference path: a freshly rebuilt snapshot, no plan
            # reuse, no caches, no deltas.
            reference = Evaluator(GraphSnapshot(graph)).evaluate(
                parse_query(text)
            )
            assert served == reference, (
                f"incremental path diverged on {text!r} after round "
                f"{round_}"
            )
            checks += 1

    table = Table(
        "A6: randomized mutation/query mix — equality checks",
        ["mutation rounds", "answer-set comparisons", "derived snapshots"],
    )
    table.add(30, checks, graph.snapshot_derivations)
    table.show()
    emit_json(
        "a6_equivalence",
        {
            "rounds": 30,
            "comparisons": checks,
            "snapshots_derived": graph.snapshot_derivations,
        },
    )
    assert graph.snapshot_derivations > 0  # the fast path actually ran

    person_query = WORKLOAD[0]
    benchmark(lambda: service.evaluate(person_query))
    service.close()
