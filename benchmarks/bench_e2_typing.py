"""E2 — Figure 2 (the typing rules): rule coverage and scaling.

Paper artefact: the Figure 2 type system. Measured: schema inference
over the rule-coverage corpus, and inference cost as pattern depth
grows (the expected shape is near-linear in the parse-tree size).
"""

from repro.bench.harness import Table, time_call
from repro.bench.workloads import deep_pattern, typing_corpus
from repro.gpc.ast import pattern_size
from repro.gpc.typing import infer_schema


def test_e2_typing_rules_and_scaling(benchmark):
    corpus = typing_corpus()
    for pattern in corpus:
        infer_schema(pattern)  # every Figure 2 rule exercised

    table = Table(
        "E2 / Figure 2: schema inference scaling",
        ["depth", "pattern size", "variables", "time (ms)"],
    )
    for depth in (8, 16, 32, 64):
        pattern = deep_pattern(depth)
        schema, elapsed = time_call(lambda p=pattern: infer_schema(p))
        table.add(depth, pattern_size(pattern), len(schema), elapsed * 1000)
    table.show()

    big = deep_pattern(32)
    benchmark(lambda: infer_schema(big))
