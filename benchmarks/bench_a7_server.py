"""Ablation A7 — HTTP serving: coalesced concurrent clients vs serial
one-connection-per-query requests.

Design choice under study: the micro-batch coalescer in
:class:`repro.server.GraphServer`. Concurrent ``POST /query`` arrivals
are folded into one ``evaluate_batch`` call (one thread hop, one
snapshot pin, one coalescing window for the whole batch), where a
serial client opening a fresh connection per query pays the full
transport + dispatch cost every time.

Two measurements, each on *both* service facades (single
:class:`GraphService` and sharded :class:`ClusterService`):

- **fidelity**: answers decoded from the HTTP payload are
  frozenset-identical to direct in-process ``GraphService.evaluate``
  — the wire encoding is lossless end to end;
- **throughput**: on a warm server (plans compiled, result caches
  populated — the steady serving state), ``CONCURRENCY`` keep-alive
  clients hammering ``/query`` together must finish the same request
  count at least **2x** faster than a serial client that opens one
  connection per query. The win is structural: the serial side pays
  per-request what the coalesced side amortises per-batch.
"""

from __future__ import annotations

import threading
import time

from repro.bench.harness import Table
from repro.cluster import ClusterService
from repro.graph.generators import social_network
from repro.server import HttpServiceClient, serve_background
from repro.service import GraphService

WORKLOAD = [
    "TRAIL (x:Person) -[e:knows]-> (y:Person)",
    "SIMPLE (x:Person) ~[:married]~ (y:Person)",
    "SHORTEST (x:Person) -[:knows]->{1,} (y:Person)",
    "TRAIL (x:Person) -[:knows]-> (y:Person), "
    "TRAIL (y:Person) -[:lives_in]-> (c:City)",
]

NUM_REQUESTS = 96
CONCURRENCY = 8


def _graph():
    return social_network(num_people=16, friend_degree=2, seed=7)


def _reference() -> dict[str, frozenset]:
    service = GraphService(_graph())
    expected = {
        text: service.evaluate(text, use_cache=False) for text in WORKLOAD
    }
    service.close()
    return expected


def _request_texts() -> list[str]:
    return [WORKLOAD[i % len(WORKLOAD)] for i in range(NUM_REQUESTS)]


def _serial_pass(address) -> float:
    """One fresh connection per query, strictly sequential."""
    texts = _request_texts()
    started = time.perf_counter()
    for text in texts:
        client = HttpServiceClient(*address)
        client.query(text)
        client.close()
    return time.perf_counter() - started


def _concurrent_pass(address) -> float:
    """CONCURRENCY keep-alive clients sharing the request count."""
    texts = _request_texts()
    chunks = [texts[i::CONCURRENCY] for i in range(CONCURRENCY)]
    errors: list[Exception] = []

    def worker(chunk):
        try:
            with HttpServiceClient(*address) as client:
                for text in chunk:
                    client.query(text)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(chunk,)) for chunk in chunks
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    assert not errors, f"concurrent client failed: {errors[0]!r}"
    return elapsed


#: The coalescing window under study. A serial one-connection-per-query
#: client pays it in full on every request; concurrent arrivals share
#: one window per batch — that asymmetry is the design being measured.
COALESCE_WINDOW_S = 0.008


def _run_facade(name: str, service, expected, table: Table) -> None:
    with serve_background(
        service,
        max_queue_depth=4 * NUM_REQUESTS,
        coalesce_window_s=COALESCE_WINDOW_S,
    ) as handle:
        with HttpServiceClient(*handle.address) as client:
            # Fidelity first — and it doubles as the warm-up that
            # compiles plans and fills the result caches.
            for text in WORKLOAD:
                assert client.query(text) == expected[text], (
                    f"{name}: HTTP-decoded answers diverged on {text!r}"
                )
        serial_s = _serial_pass(handle.address)
        concurrent_s = _concurrent_pass(handle.address)
        stats = handle.server.stats
        dispatches = stats.dispatches
        queries = stats.queries
        max_batch = stats.max_batch
        assert stats.rejected == 0, "benchmark load must not be shed"
    table.add(
        name,
        NUM_REQUESTS,
        serial_s * 1000,
        concurrent_s * 1000,
        f"{serial_s / concurrent_s:.1f}x",
        f"{queries}/{dispatches}",
        max_batch,
    )
    # Coalescing really happened: the concurrent pass folded at least
    # two arrivals into one dispatch somewhere.
    assert max_batch >= 2, f"{name}: no two queries ever coalesced"
    # Acceptance criterion: >= 2x over one-connection-per-query serial.
    assert serial_s >= 2 * concurrent_s, (
        f"{name}: coalesced serving only "
        f"{serial_s / concurrent_s:.2f}x faster "
        f"({serial_s * 1000:.0f}ms vs {concurrent_s * 1000:.0f}ms)"
    )


def test_a7_http_serving_throughput():
    """Warm coalesced serving beats serial per-connection requests by
    >= 2x, and HTTP answers decode frozenset-identical to direct
    evaluation, on both service facades."""
    expected = _reference()
    table = Table(
        "A7: HTTP serving — coalesced concurrent vs serial per-connection",
        [
            "facade",
            "requests",
            "serial ms",
            f"{CONCURRENCY} clients ms",
            "speedup",
            "queries/dispatches",
            "max batch",
        ],
    )
    _run_facade("GraphService", GraphService(_graph()), expected, table)
    _run_facade(
        "ClusterService",
        ClusterService(_graph(), backend="thread", num_workers=2),
        expected,
        table,
    )
    table.show()
