"""E1 — Figure 1 (the grammar): full-coverage parse + round-trip.

Paper artefact: the GPC grammar of Figure 1. Measured: every
production parses, round-trips through the pretty-printer, and the
parser's throughput on the coverage corpus.
"""

from repro.bench.harness import Table
from repro.bench.workloads import grammar_corpus
from repro.gpc.parser import parse_pattern
from repro.gpc.pretty import pretty


def test_e1_grammar_coverage_and_throughput(benchmark):
    corpus = grammar_corpus()
    table = Table(
        "E1 / Figure 1: grammar coverage",
        ["snippets", "parsed", "round-tripped"],
    )
    parsed = [parse_pattern(text) for text in corpus]
    round_tripped = sum(
        1 for pattern in parsed if parse_pattern(pretty(pattern)) == pattern
    )
    table.add(len(corpus), len(parsed), round_tripped)
    table.show()
    assert round_tripped == len(corpus)

    def kernel():
        for text in corpus:
            parse_pattern(text)

    benchmark(kernel)
