"""Ablation A8 — tracing overhead: the observability layer must be
(nearly) free.

Design choice under study: contextvar-scoped spans with a *null-span*
fast path. Every serving hop calls ``span(...)``; when tracing is
disabled (or no trace is active) that call must degenerate to one
contextvar read returning the shared ``NULL_SPAN`` — no allocation, no
clock read, no lock. When tracing *is* enabled, the per-span cost
(two clock reads, one small object) must disappear into real serving
latency.

Two gates on the bench_a7 serving workload:

- **microbench** — a disabled-tracing ``span()`` enter/exit must cost
  within ``NULLSPAN_MAX_RATIO`` of an empty ``with`` on a no-op
  context manager (the floor for *any* ``with``-based hook);
- **end-to-end** — concurrent HTTP serving with tracing enabled must
  finish within ``OVERHEAD_MAX_RATIO`` (plus a small absolute slack
  for timer noise) of the same pass with tracing disabled,
  best-of-``REPEATS`` per mode.
"""

from __future__ import annotations

import threading
import time

from repro.bench.harness import Table
from repro.graph.generators import social_network
from repro.obs import span
from repro.server import HttpServiceClient, serve_background
from repro.service import GraphService

WORKLOAD = [
    "TRAIL (x:Person) -[e:knows]-> (y:Person)",
    "SIMPLE (x:Person) ~[:married]~ (y:Person)",
    "SHORTEST (x:Person) -[:knows]->{1,} (y:Person)",
    "TRAIL (x:Person) -[:knows]-> (y:Person), "
    "TRAIL (y:Person) -[:lives_in]-> (c:City)",
]

NUM_REQUESTS = 96
CONCURRENCY = 8
REPEATS = 3

#: Enabled serving may cost at most 10% over disabled, plus this many
#: milliseconds of absolute slack so sub-100ms baselines don't turn
#: scheduler jitter into failures.
OVERHEAD_MAX_RATIO = 1.10
OVERHEAD_SLACK_MS = 30.0

#: A disabled span() enter/exit vs an empty no-op ``with`` block.
NULLSPAN_MAX_RATIO = 12.0
MICRO_ITERATIONS = 50_000


def _graph():
    return social_network(num_people=16, friend_degree=2, seed=7)


class _NoopContext:
    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


def _micro(loop_body) -> float:
    """Best-of-3 seconds for MICRO_ITERATIONS runs of ``loop_body``."""
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        loop_body()
        best = min(best, time.perf_counter() - started)
    return best


def _nullspan_micro() -> tuple[float, float]:
    """(noop_with_s, disabled_span_s) over MICRO_ITERATIONS each."""
    noop = _NoopContext()

    def baseline():
        for _ in range(MICRO_ITERATIONS):
            with noop:
                pass

    def disabled():
        # No ambient trace: span() returns NULL_SPAN immediately.
        for _ in range(MICRO_ITERATIONS):
            with span("hop"):
                pass

    return _micro(baseline), _micro(disabled)


def _concurrent_pass(address) -> float:
    texts = [WORKLOAD[i % len(WORKLOAD)] for i in range(NUM_REQUESTS)]
    chunks = [texts[i::CONCURRENCY] for i in range(CONCURRENCY)]
    errors: list[Exception] = []

    def worker(chunk):
        try:
            with HttpServiceClient(*address) as client:
                for text in chunk:
                    client.query(text)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(chunk,)) for chunk in chunks
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    assert not errors, f"concurrent client failed: {errors[0]!r}"
    return elapsed


def _serve_workload(tracing: bool) -> float:
    """Best-of-REPEATS wall clock for the concurrent pass on a warm
    server with tracing on/off."""
    with serve_background(
        GraphService(_graph()),
        max_queue_depth=4 * NUM_REQUESTS,
        tracing=tracing,
    ) as handle:
        with HttpServiceClient(*handle.address) as client:
            for text in WORKLOAD:  # warm plans and caches
                client.query(text)
        best = min(
            _concurrent_pass(handle.address) for _ in range(REPEATS)
        )
        if tracing:
            # The traced pass really traced: requests were recorded.
            assert handle.server.tracer.store.counters()["seen"] > 0
        else:
            assert handle.server.tracer.store.counters()["seen"] == 0
    return best


def test_a8_tracing_overhead():
    """Disabled tracing is a near-no-op per hop, and enabled tracing
    costs <= 10% (plus timer slack) on warm concurrent HTTP serving."""
    noop_s, disabled_s = _nullspan_micro()
    disabled_ns = disabled_s / MICRO_ITERATIONS * 1e9
    noop_ns = noop_s / MICRO_ITERATIONS * 1e9

    off_s = _serve_workload(tracing=False)
    on_s = _serve_workload(tracing=True)

    table = Table(
        "A8: tracing overhead — enabled vs disabled serving",
        [
            "measurement",
            "disabled",
            "enabled",
            "ratio",
            "bound",
        ],
    )
    table.add(
        "span() enter/exit ns",
        f"{noop_ns:.0f} (noop with)",
        f"{disabled_ns:.0f}",
        f"{disabled_ns / noop_ns:.1f}x",
        f"<= {NULLSPAN_MAX_RATIO:.0f}x",
    )
    table.add(
        f"{NUM_REQUESTS} reqs x{CONCURRENCY} ms",
        f"{off_s * 1000:.1f}",
        f"{on_s * 1000:.1f}",
        f"{on_s / off_s:.2f}x",
        f"<= {OVERHEAD_MAX_RATIO:.2f}x + {OVERHEAD_SLACK_MS:.0f}ms",
    )
    table.show()

    assert disabled_ns <= noop_ns * NULLSPAN_MAX_RATIO, (
        f"disabled span() costs {disabled_ns:.0f}ns vs {noop_ns:.0f}ns "
        f"for a no-op with block ({disabled_ns / noop_ns:.1f}x, "
        f"bound {NULLSPAN_MAX_RATIO}x) — the null-span fast path broke"
    )
    assert on_s <= off_s * OVERHEAD_MAX_RATIO + OVERHEAD_SLACK_MS / 1000, (
        f"tracing-enabled serving took {on_s * 1000:.0f}ms vs "
        f"{off_s * 1000:.0f}ms disabled "
        f"({(on_s / off_s - 1) * 100:.1f}% overhead, bound "
        f"{(OVERHEAD_MAX_RATIO - 1) * 100:.0f}% + {OVERHEAD_SLACK_MS:.0f}ms)"
    )
