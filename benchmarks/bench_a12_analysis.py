"""Ablation A12 — static query analysis (unsat proofs + rewrites).

Design choice under study: running the compositional static analyzer
(:mod:`repro.gpc.analysis`) inside every prepared plan. The analyzer
is pure AST work, so it must be effectively free on the prepare path —
and when it proves a query empty, evaluation short-circuits without
touching the snapshot at all, which should dominate any evaluator.

Two measurements on one 10k-node graph (the A9/A11 segmented ring +
chords topology):

- **prepare overhead**: building fresh :class:`PreparedQuery` objects
  (parse, typecheck, analyze, compile automatons — the service-layer
  plan-cache-miss path) for a clean-query workload with
  ``use_analysis`` on vs off. Asserted: <= 10% overhead (the analysis
  is one tree walk next to parsing, schema inference and register-NFA
  compilation).
- **proven-empty-heavy workload**: contradictory conditions over the
  condition-heavy A11 query shape. Analysis-off pays the full dense
  search before the final check kills every candidate; analysis-on
  never touches the snapshot. Asserted: >= 10x, and both sides agree
  the answer set is empty.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import Table, emit_json, time_call
from repro.gpc.engine import EngineConfig, Evaluator
from repro.service.prepared import PreparedQuery
from repro.gpc.parser import parse_query
from repro.graph import PropertyGraph
from repro.graph.snapshot import GraphSnapshot

N = 10_000
SEG = 250
CHORDS = 16

#: Clean queries for the prepare-overhead side: nothing to rewrite,
#: so the analyzer's walk is pure cost.
CLEAN_QUERIES = (
    "TRAIL (x:Probe) -[:next]-> (y)",
    "SHORTEST (x:Probe) -[:next]->{1,} (y:Adj)",
    "SHORTEST [(x:Probe) -> (m) -[:next]->{1,} (y:Adj)] << m.k = 1 >>",
    "TRAIL (x:Probe) -[:next]-> (y), TRAIL (y) -[:next]-> (z)",
)

#: The A11 condition-heavy shape with a contradiction bolted on: the
#: analyzer proves it empty; the raw engine runs the whole search.
EMPTY_QUERY = (
    "SHORTEST [(x:Probe) -> (m) -[:next]->{1,} (y:Adj)]"
    " << m.k = 1 AND m.k = 2 >>"
)

ANALYSIS_ON = EngineConfig(use_analysis=True)
ANALYSIS_OFF = EngineConfig(use_analysis=False)


@pytest.fixture(scope="module")
def snapshot() -> GraphSnapshot:
    rng = random.Random(11)
    graph = PropertyGraph()
    handles = []
    for i in range(N):
        labels = []
        if i % SEG == 0:
            labels.append("Probe")
        if i % SEG == 6:
            labels.append("Adj")
        handles.append(
            graph.add_node(f"n{i}", labels, {"k": 1 if i % SEG == 1 else 0})
        )
    for i in range(N - 1):
        if (i + 1) % SEG != 0:
            graph.add_edge(f"next{i}", handles[i], handles[i + 1], ["next"])
    for i in range(N):
        for c in range(CHORDS):
            graph.add_edge(
                f"c{i}_{c}", handles[i], handles[rng.randrange(N)], ["chord"]
            )
    return GraphSnapshot(graph)


def _best_of(fn, repeats: int = 3) -> tuple[object, float]:
    result, best = fn(), float("inf")
    for _ in range(repeats):
        _, elapsed = time_call(fn)
        best = min(best, elapsed)
    return result, best


def test_a12_prepare_overhead():
    rounds = 8  # batch several prepares per timing: ~5 ms timed units

    def prepare(config: EngineConfig) -> None:
        # Fresh PreparedQuery each round — the service's plan-cache
        # miss path: parse, typecheck, analyze, compile automatons.
        for _ in range(rounds):
            for text in CLEAN_QUERIES:
                PreparedQuery(text, config)

    prepare(ANALYSIS_ON)  # warm parser/analysis caches on both paths
    prepare(ANALYSIS_OFF)
    # Interleave the two configurations so clock drift, GC pauses and
    # frequency scaling hit both sides; best-of within a block keeps
    # the clean runs, best-of-blocks discards whole noisy windows
    # (noise only ever inflates the measured overhead).
    overhead, with_s, without_s = float("inf"), 0.0, 0.0
    for _ in range(3):
        on_s = off_s = float("inf")
        for _ in range(10):
            _, elapsed = time_call(lambda: prepare(ANALYSIS_ON))
            on_s = min(on_s, elapsed)
            _, elapsed = time_call(lambda: prepare(ANALYSIS_OFF))
            off_s = min(off_s, elapsed)
        if on_s / off_s - 1.0 < overhead:
            overhead, with_s, without_s = on_s / off_s - 1.0, on_s, off_s

    table = Table(
        "A12: query-prepare cost (4 clean queries, fresh plans)",
        ["configuration", "ms / batch"],
    )
    table.add("analysis off", without_s * 1000)
    table.add("analysis on", with_s * 1000)
    table.show()
    emit_json(
        "a12_analysis_prepare",
        {
            "queries": len(CLEAN_QUERIES),
            "with_analysis_ms": with_s * 1000,
            "without_analysis_ms": without_s * 1000,
            "overhead_fraction": overhead,
        },
    )
    # Acceptance criterion: analysis adds <= 10% to prepare.
    assert overhead <= 0.10, f"analysis adds {overhead:.1%} to prepare"


def test_a12_proven_empty_speedup(snapshot):
    query = parse_query(EMPTY_QUERY)

    on_answers, on_s = _best_of(
        lambda: Evaluator(snapshot, ANALYSIS_ON).evaluate(query)
    )
    off_answers, off_s = _best_of(
        lambda: Evaluator(snapshot, ANALYSIS_OFF).evaluate(query)
    )
    # Soundness first: the proof and the full evaluation must agree.
    assert on_answers == off_answers == frozenset()

    speedup = off_s / on_s
    table = Table(
        "A12: provably-empty workload (contradictory << m.k >>)",
        ["configuration", "ms / query"],
    )
    table.add("full evaluation (analysis off)", off_s * 1000)
    table.add("short-circuit (analysis on)", on_s * 1000)
    table.show()
    emit_json(
        "a12_analysis_short_circuit",
        {
            "nodes": N,
            "analysis_on_ms": on_s * 1000,
            "analysis_off_ms": off_s * 1000,
            "speedup": speedup,
        },
    )
    # Acceptance criterion: >= 10x on the proven-empty-heavy workload.
    assert speedup >= 10, f"short-circuit only {speedup:.2f}x"
