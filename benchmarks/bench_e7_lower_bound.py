"""E7 — Theorem 13: the exponential lower bound.

Paper artefact: Theorem 13's witness — on the 2-node, 4-edge gadget,
``x = shortest () ->{k..k} ()`` has 2^k answers per endpoint pair, so
no polynomial-space machine can enumerate them without repetition.
Measured: the answer count doubles with each increment of k (exactly
2^k per pair, 2 reachable pairs), and wall-clock time grows in step.
"""

from repro.bench.harness import Table, time_call
from repro.gpc.engine import evaluate
from repro.gpc.parser import parse_query
from repro.graph.generators import theorem13_gadget


def test_e7_exponential_answers(benchmark):
    graph = theorem13_gadget()
    table = Table(
        "E7 / Theorem 13: answers of x = shortest () ->{k..k} ()",
        ["k", "answers", "expected 2 * 2^k", "time (ms)"],
    )
    previous = None
    for k in (2, 4, 6, 8, 10):
        query = parse_query(f"x = SHORTEST () ->{{{k},{k}}} ()")
        answers, elapsed = time_call(lambda q=query: evaluate(q, graph))
        expected = 2 * 2**k
        table.add(k, len(answers), expected, elapsed * 1000)
        assert len(answers) == expected
        if previous is not None:
            assert len(answers) == 4 * previous  # k += 2 -> x4
        previous = len(answers)
    table.show()

    query = parse_query("x = SHORTEST () ->{6,6} ()")
    benchmark(lambda: evaluate(query, graph))
