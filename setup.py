"""Legacy setup shim.

The reproduction environment is offline and lacks the ``wheel``
package, so PEP 517 editable installs fail; this shim lets
``pip install -e .`` take the classic ``setup.py develop`` path.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Reference implementation of GPC, the graph pattern calculus "
        "underlying GQL and SQL/PGQ (PODS 2023)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
